"""Unit tests for the replicated unit database."""

from repro.core.context import ContextSnapshot
from repro.core.unit_db import UnitDatabase


def snap(update_counter=0, epoch=0):
    return ContextSnapshot(
        app_state={}, update_counter=update_counter, epoch=epoch, stamped_at=0.0
    )


def make_db(n_sessions=3):
    db = UnitDatabase("u0")
    for i in range(n_sessions):
        db.add_session(f"sess{i}", f"c{i}", None, snap())
    return db


def test_add_and_get():
    db = make_db(1)
    record = db.get("sess0")
    assert record.client_id == "c0"
    assert record.primary is None
    assert "sess0" in db
    assert len(db) == 1


def test_remove_session_idempotent():
    db = make_db(1)
    db.remove_session("sess0")
    db.remove_session("sess0")
    assert len(db) == 0


def test_session_ids_sorted():
    db = UnitDatabase("u0")
    for name in ("b", "a", "c"):
        db.add_session(name, "c", None, snap())
    assert db.session_ids() == ["a", "b", "c"]


def test_set_allocation():
    db = make_db(1)
    db.set_allocation("sess0", "s1", ("s2", "s3"))
    record = db.get("sess0")
    assert record.primary == "s1"
    assert record.backups == ("s2", "s3")


def test_set_allocation_unknown_session_is_noop():
    db = make_db(0)
    db.set_allocation("ghost", "s1", ())


def test_apply_propagation_fresher_wins():
    db = make_db(1)
    assert db.apply_propagation("sess0", snap(update_counter=5, epoch=1))
    # update-poorer snapshots never overwrite, whatever their epoch
    assert not db.apply_propagation("sess0", snap(update_counter=1, epoch=9))
    assert db.get("sess0").snapshot.update_counter == 5


def test_apply_propagation_unknown_session():
    db = make_db(0)
    assert not db.apply_propagation("ghost", snap(epoch=1))


def test_load_of_counts_primaries_and_backups():
    db = make_db(3)
    db.set_allocation("sess0", "s0", ("s1",))
    db.set_allocation("sess1", "s0", ("s2",))
    db.set_allocation("sess2", "s1", ("s0",))
    assert db.load_of("s0") == 2.25
    assert db.load_of("s1") == 1.25
    assert db.load_of("s2") == 0.25


def test_sessions_of_primary():
    db = make_db(2)
    db.set_allocation("sess0", "s0", ())
    db.set_allocation("sess1", "s1", ())
    assert db.sessions_of_primary("s0") == ["sess0"]


def test_merge_takes_freshest_record_per_session():
    db_a = make_db(2)
    db_a.apply_propagation("sess0", snap(epoch=5))
    db_b = make_db(2)
    db_b.apply_propagation("sess0", snap(epoch=3))
    db_b.apply_propagation("sess1", snap(epoch=9))
    merged = UnitDatabase.merge(
        "u0", [db_a.snapshot_for_exchange(), db_b.snapshot_for_exchange()]
    )
    assert merged.get("sess0").snapshot.epoch == 5
    assert merged.get("sess1").snapshot.epoch == 9


def test_merge_unions_disjoint_sessions():
    db_a = UnitDatabase("u0")
    db_a.add_session("a", "ca", None, snap())
    db_b = UnitDatabase("u0")
    db_b.add_session("b", "cb", None, snap())
    merged = UnitDatabase.merge(
        "u0", [db_a.snapshot_for_exchange(), db_b.snapshot_for_exchange()]
    )
    assert merged.session_ids() == ["a", "b"]


def test_merge_is_order_insensitive():
    db_a = make_db(2)
    db_a.apply_propagation("sess0", snap(epoch=5))
    db_b = make_db(2)
    dump_a, dump_b = db_a.snapshot_for_exchange(), db_b.snapshot_for_exchange()
    m1 = UnitDatabase.merge("u0", [dump_a, dump_b])
    m2 = UnitDatabase.merge("u0", [dump_b, dump_a])
    assert m1.equals(m2)


def test_equals_detects_differences():
    db_a = make_db(1)
    db_b = make_db(1)
    assert db_a.equals(db_b)
    db_b.set_allocation("sess0", "s9", ())
    assert not db_a.equals(db_b)
