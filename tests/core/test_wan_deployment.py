"""The framework over WAN latencies (Section 4's WAN discussion).

WAN runs use the heavy-tailed latency model and GCS timeouts scaled so
that jitter does not masquerade as failure.  These tests check that the
whole stack — membership, ordering, session management, failover — still
works when one-way delays are ~30 ms instead of ~0.3 ms.
"""

import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.gcs.settings import GcsSettings
from repro.services import VodApplication, build_movie


def make_wan_cluster(n_servers=3, num_backups=1, seed=11):
    movie = build_movie("m0", duration_seconds=300, frame_rate=10)
    app = VodApplication({"m0": movie})
    cluster = ServiceCluster.build(
        n_servers=n_servers,
        units={"m0": app},
        replication=n_servers,
        policy=AvailabilityPolicy(num_backups=num_backups, propagation_period=1.0),
        settings=GcsSettings().scaled(5.0),
        seed=seed,
        latency="wan",
    )
    cluster.run(8.0)
    return cluster


@pytest.fixture(scope="module")
def wan_world():
    cluster = make_wan_cluster()
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(8.0)
    return cluster, client, handle


def test_membership_converges_over_wan():
    cluster = make_wan_cluster()
    views = {server.daemon.config.view_id for server in cluster.servers.values()}
    assert len(views) == 1


def test_session_streams_over_wan(wan_world):
    cluster, client, handle = wan_world
    assert handle.started
    assert len(handle.received) > 20
    indices = handle.response_indices()
    assert indices == sorted(indices)


def test_update_applies_over_wan():
    cluster = make_wan_cluster(seed=12)
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(8.0)
    client.send_update(handle, {"op": "skip", "to": 2000})
    cluster.run(5.0)
    assert handle.response_indices()[-1] >= 2000


def test_failover_over_wan():
    cluster = make_wan_cluster(seed=13)
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(8.0)
    victim = cluster.primaries_of(handle.session_id)[0]
    count = len(handle.received)
    cluster.crash_server(victim)
    cluster.run(15.0)
    survivors = cluster.primaries_of(handle.session_id)
    assert len(survivors) == 1 and survivors[0] != victim
    assert len(handle.received) > count + 20
    cluster.monitor.check_all()


def test_scaled_settings_preserve_flags():
    settings = GcsSettings(detect_divergence=False).scaled(10.0)
    assert settings.heartbeat_interval == pytest.approx(1.0)
    assert settings.detect_divergence is False
