"""Tests for the baselines package and the experiments' shared machinery."""

import pytest

from repro.baselines import full_sync_policy, no_backup_policy, single_server_cluster
from repro.experiments.common import (
    LedgerApplication,
    ledger_cluster,
    send_updates_periodically,
    surviving_counters,
)
from repro.services import VodApplication, build_movie


class TestBaselines:
    def test_no_backup_policy_matches_vod_paper(self):
        policy = no_backup_policy(propagation_period=0.5)
        assert policy.num_backups == 0
        assert policy.session_group_size == 1

    def test_full_sync_period_matches_response_rate(self):
        policy = full_sync_policy(response_rate=24.0)
        assert policy.propagation_period == pytest.approx(1 / 24)

    def test_full_sync_validation(self):
        with pytest.raises(ValueError):
            full_sync_policy(response_rate=0.0)

    def test_single_server_cluster_serves(self):
        movie = build_movie("m0", duration_seconds=60, frame_rate=10)
        cluster = single_server_cluster({"m0": VodApplication({"m0": movie})})
        cluster.settle()
        client = cluster.add_client("c0")
        handle = client.start_session("m0")
        cluster.run(3.0)
        assert handle.started
        assert len(cluster.servers) == 1

    def test_single_server_crash_is_total_outage(self):
        movie = build_movie("m0", duration_seconds=60, frame_rate=10)
        cluster = single_server_cluster({"m0": VodApplication({"m0": movie})})
        cluster.settle()
        client = cluster.add_client("c0")
        handle = client.start_session("m0")
        cluster.run(3.0)
        cluster.crash_server("s0")
        count = len(handle.received)
        cluster.run(5.0)
        assert len(handle.received) == count


class TestLedgerApplication:
    def test_updates_accumulate(self):
        app = LedgerApplication()
        state = app.initial_state("u", None)
        state = app.apply_update(state, {"counter": 3})
        state = app.apply_update(state, {"counter": 1})
        assert state.counters == {1, 3}

    def test_malformed_update_ignored(self):
        app = LedgerApplication()
        state = app.initial_state("u", None)
        assert app.apply_update(state, {"op": "noise"}).counters == frozenset()

    def test_no_streaming(self):
        app = LedgerApplication()
        state = app.initial_state("u", None)
        assert app.response_interval(state) is None


class TestSurvivingCounters:
    def test_counts_primary_state(self):
        cluster = ledger_cluster(
            n_servers=3, num_backups=1, propagation_period=0.5, seed=9
        )
        client = cluster.add_client("c0")
        handle = client.start_session("ledger-0")
        cluster.run(2.0)
        for counter in (1, 2, 3):
            client.send_update(handle, {"counter": counter})
        cluster.run(1.0)
        assert surviving_counters(cluster, handle.session_id) == {1, 2, 3}

    def test_survives_primary_crash_through_backup(self):
        cluster = ledger_cluster(
            n_servers=3, num_backups=1, propagation_period=5.0, seed=9
        )
        client = cluster.add_client("c0")
        handle = client.start_session("ledger-0")
        cluster.run(2.0)
        client.send_update(handle, {"counter": 1})
        cluster.run(0.3)
        cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
        cluster.run(4.0)
        assert 1 in surviving_counters(cluster, handle.session_id)

    def test_send_updates_periodically_schedules_all(self):
        cluster = ledger_cluster(
            n_servers=2, num_backups=0, propagation_period=0.5, seed=9
        )
        client = cluster.add_client("c0")
        handle = client.start_session("ledger-0")
        cluster.run(2.0)
        send_updates_periodically(
            cluster, client, handle, period=0.2, duration=2.0,
            make_update=lambda k: {"counter": k + 1},
        )
        cluster.run(3.0)
        assert handle.update_counter == 10
