"""Smoke tests: every experiment runs end-to-end in fast mode and its
tables carry the qualitative shape the paper claims."""

import pytest

from repro.experiments import EXPERIMENT_MODULES, get_experiment


@pytest.mark.parametrize("name", list(EXPERIMENT_MODULES))
def test_experiment_runs_fast(name):
    module = get_experiment(name)
    tables = module.run(seed=1, fast=True)
    assert tables
    for table in tables:
        assert table.rows
        rendered = table.render()
        assert table.title in rendered


def test_e2_load_shape():
    """Propagation load halves when the period doubles; backup update load
    scales with the number of backups; responses stay flat."""
    tables = get_experiment("E2").run(seed=2, fast=True)
    rows = tables[0].rows
    by_key = {(r[0], r[1]): r for r in rows}
    # period effect at fixed backups=0: T=0.25 vs T=1.0
    assert by_key[(0, 0.25)][2] > 3 * by_key[(0, 1.0)][2]
    # the delta-accounted wire cost also rises as the period shrinks,
    # but sub-linearly in message count (deltas ship only changed fields)
    assert by_key[(0, 0.25)][3] > by_key[(0, 1.0)][3]
    # backups effect at fixed period (backup_updates is column 4 now)
    assert by_key[(2, 0.25)][4] > by_key[(0, 0.25)][4]
    # responses roughly equal everywhere
    responses = [r[6] for r in rows]
    assert max(responses) - min(responses) < 2.0


def test_e3_scenarios_shape():
    """Only the WAN non-transitive scenario sustains client-visible dual
    service; only total content loss produces a long outage."""
    tables = get_experiment("E3").run(seed=3, fast=True)
    rows = {r[0]: r for r in tables[0].rows}
    assert rows["stable"][3] == 0  # dual_sender_s
    assert rows["stable"][4] == 0  # no_primary_s
    assert rows["wan-non-transitive"][3] > 2.0
    assert rows["total-content-loss"][4] > 5.0


def test_e4_duplicates_grow_with_period():
    tables = get_experiment("E4").run(seed=4, fast=True)
    rows = tables[0].rows
    short, long = rows[0], rows[-1]
    assert short[0] < long[0]
    assert short[1] <= long[1]


def test_e8_fairness_restored():
    tables = get_experiment("E8").run(seed=5, fast=True)
    rows = tables[0].rows
    initial, crash, rejoin = rows
    assert initial[2] > 0.95
    assert rejoin[2] > 0.95


def test_e9_policy_shape():
    """resend-all loses nothing; skip duplicates nothing; mpeg never loses
    an I frame and never duplicates P/B frames."""
    tables = get_experiment("E9").run(seed=6, fast=True)
    rows = {r[0]: r for r in tables[0].rows}
    assert rows["resend-all"][3] == 0 and rows["resend-all"][4] == 0
    assert rows["skip-uncertain"][1] == 0 and rows["skip-uncertain"][2] == 0
    assert rows["mpeg (I only)"][3] == 0  # never lose an I frame
    assert rows["mpeg (I only)"][2] == 0  # never duplicate P/B


def test_e10_rsm_checks_pass():
    tables = get_experiment("E10").run(seed=7, fast=True)
    rsm_table = tables[0]
    for row in rsm_table.rows[:3]:
        assert row[1] is True, row


def test_runner_subset(capsys):
    from repro.experiments.runner import run_all

    results = run_all(["E3"], seed=8, fast=True)
    assert "E3" in results
    captured = capsys.readouterr()
    assert "E3" in captured.out
