"""Unit tests for fault schedules, generators, and the injector."""

import numpy as np
import pytest

from repro.faults.generators import (
    crash_burst_schedule,
    flapping_partition_schedule,
    poisson_crash_schedule,
)
from repro.faults.injector import inject
from repro.faults.schedule import FaultEvent, FaultSchedule
from tests.core.conftest import make_vod_cluster


class TestSchedule:
    def test_builder_methods(self):
        schedule = (
            FaultSchedule()
            .crash(1.0, "s0")
            .recover(2.0, "s0")
            .partition(3.0, {"s0"}, {"s1"})
            .heal(4.0)
            .cut_link(5.0, "a", "b")
            .restore_link(6.0, "a", "b")
        )
        assert len(schedule) == 6
        kinds = [e.kind for e in schedule.sorted_events()]
        assert kinds == [
            "crash", "recover", "partition", "heal", "cut_link", "restore_link",
        ]

    def test_sorted_events(self):
        schedule = FaultSchedule().crash(5.0, "b").crash(1.0, "a")
        assert [e.time for e in schedule.sorted_events()] == [1.0, 5.0]

    def test_crashes_filter(self):
        schedule = FaultSchedule().crash(1.0, "a").recover(2.0, "a")
        assert len(schedule.crashes()) == 1

    def test_shifted(self):
        schedule = FaultSchedule().crash(1.0, "a").shifted(10.0)
        assert schedule.sorted_events()[0].time == 11.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="meteor")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind="crash")


class TestGenerators:
    def test_poisson_schedule_alternates_and_respects_spare(self):
        rng = np.random.default_rng(1)
        schedule = poisson_crash_schedule(
            rng, ["s0", "s1", "s2"], duration=100.0,
            failure_rate=0.1, mean_downtime=2.0, spare="s2",
        )
        per_server: dict[str, list[str]] = {}
        for event in schedule.sorted_events():
            per_server.setdefault(event.target, []).append(event.kind)
        assert "s2" not in per_server
        for kinds in per_server.values():
            # strict alternation starting with a crash
            assert kinds[0] == "crash"
            for a, b in zip(kinds, kinds[1:]):
                assert a != b

    def test_poisson_zero_rate_empty(self):
        rng = np.random.default_rng(1)
        schedule = poisson_crash_schedule(
            rng, ["s0"], duration=10.0, failure_rate=0.0
        )
        assert len(schedule) == 0

    def test_poisson_deterministic_per_seed(self):
        a = poisson_crash_schedule(
            np.random.default_rng(7), ["s0", "s1"], 50.0, 0.1
        )
        b = poisson_crash_schedule(
            np.random.default_rng(7), ["s0", "s1"], 50.0, 0.1
        )
        assert [
            (e.time, e.kind, e.target) for e in a.sorted_events()
        ] == [(e.time, e.kind, e.target) for e in b.sorted_events()]

    def test_burst_size_and_window(self):
        rng = np.random.default_rng(2)
        schedule = crash_burst_schedule(
            rng, ["s0", "s1", "s2", "s3"], at=5.0, burst_size=3,
            stagger=0.1, recover_after=2.0,
        )
        crashes = schedule.crashes()
        assert len(crashes) == 3
        assert all(5.0 <= e.time <= 5.2 for e in crashes)
        assert len([e for e in schedule.events if e.kind == "recover"]) == 3

    def test_burst_capped_at_population(self):
        rng = np.random.default_rng(2)
        schedule = crash_burst_schedule(rng, ["s0"], at=1.0, burst_size=5)
        assert len(schedule.crashes()) == 1

    def test_flapping_partitions_alternate(self):
        rng = np.random.default_rng(3)
        schedule = flapping_partition_schedule(
            rng, ["s0"], ["s1"], duration=100.0,
            mean_stable=2.0, mean_partitioned=1.0,
        )
        kinds = [e.kind for e in schedule.sorted_events()]
        assert kinds and kinds[0] == "partition"
        for a, b in zip(kinds, kinds[1:]):
            assert a != b


class TestInjector:
    def test_crash_and_recover_applied(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().crash(1.0, "s1").recover(3.0, "s1")
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.servers["s1"].is_up()
        cluster.run(2.0)
        assert cluster.servers["s1"].is_up()

    def test_partition_and_heal_applied(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().partition(1.0, {"s0"}, {"s1", "s2"}).heal(3.0)
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.network.topology.connected("s0", "s1")
        cluster.run(2.0)
        assert cluster.network.topology.connected("s0", "s1")

    def test_cut_and_restore_link(self):
        cluster = make_vod_cluster()
        schedule = (
            FaultSchedule().cut_link(1.0, "s0", "s1").restore_link(2.0, "s0", "s1")
        )
        inject(cluster, schedule)
        cluster.run(1.5)
        assert not cluster.network.topology.connected("s0", "s1")
        cluster.run(1.0)
        assert cluster.network.topology.connected("s0", "s1")

    def test_offset_defaults_to_now(self):
        cluster = make_vod_cluster()
        cluster.run(5.0)
        schedule = FaultSchedule().crash(1.0, "s0")
        inject(cluster, schedule)
        cluster.run(0.5)
        assert cluster.servers["s0"].is_up()
        cluster.run(1.0)
        assert not cluster.servers["s0"].is_up()

    def test_redundant_events_harmless(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().crash(1.0, "s0").crash(1.5, "s0")
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.servers["s0"].is_up()

    def test_unknown_server_ignored(self):
        cluster = make_vod_cluster()
        inject(cluster, FaultSchedule().crash(1.0, "ghost"))
        cluster.run(2.0)  # should not raise


class TestExtendedVocabulary:
    def test_gray_and_adversity_builders(self):
        schedule = (
            FaultSchedule()
            .slowdown(1.0, "s0", 0.2)
            .restore_speed(2.0, "s0")
            .delay_link(3.0, "s0", "s1", 0.1)
            .restore_delay(4.0, "s0", "s1")
            .duplicate(5.0, 0.05)
            .reorder(6.0, 0.05, window=0.1)
            .crash_at(7.0, "s0", "pre-handoff")
        )
        assert [e.kind for e in schedule.sorted_events()] == [
            "slowdown", "restore_speed", "delay_link", "restore_delay",
            "duplicate", "reorder", "crash_at",
        ]
        assert schedule.kinds() == {
            "slowdown", "restore_speed", "delay_link", "restore_delay",
            "duplicate", "reorder", "crash_at",
        }

    def test_merged_is_sorted_union(self):
        a = FaultSchedule().crash(5.0, "s0").recover(9.0, "s0")
        b = FaultSchedule().slowdown(1.0, "s1", 0.3).partition(7.0, ["s0"], ["s1"])
        merged = a.merged(b)
        assert len(merged) == 4
        assert [e.time for e in merged.events] == [1.0, 5.0, 7.0, 9.0]
        # merging never mutates the operands
        assert len(a) == 2 and len(b) == 2


class TestSchedulePersistence:
    def test_json_round_trip(self):
        schedule = (
            FaultSchedule()
            .crash(1.5, "s0")
            .partition(2.0, ["s0"], ["s1", "s2"])
            .reorder(3.0, 0.02, window=0.08)
            .crash_at(4.0, "s1", "post-update")
        )
        rebuilt = FaultSchedule.from_json(schedule.to_json())
        assert [e.key() for e in rebuilt.sorted_events()] == [
            e.key() for e in schedule.sorted_events()
        ]

    def test_round_trip_through_json_text(self):
        import json

        schedule = FaultSchedule().crash(1.0, "s0").duplicate(2.0, 0.05)
        text = json.dumps(schedule.to_json())
        rebuilt = FaultSchedule.from_json(json.loads(text))
        assert [e.key() for e in rebuilt.sorted_events()] == [
            e.key() for e in schedule.sorted_events()
        ]

    def test_from_json_rejects_non_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            FaultSchedule.from_json({"time": 1.0})

    def test_from_json_rejects_nan_and_negative_times(self):
        with pytest.raises(ValueError, match="entry 0"):
            FaultSchedule.from_json([{"time": float("nan"), "kind": "crash"}])
        with pytest.raises(ValueError, match="entry 0"):
            FaultSchedule.from_json([{"time": -2.0, "kind": "crash"}])

    def test_from_json_rejects_unknown_kind_with_index(self):
        good = {"time": 1.0, "kind": "crash", "target": "s0"}
        with pytest.raises(ValueError, match="entry 1"):
            FaultSchedule.from_json([good, {"time": 2.0, "kind": "meteor"}])

    def test_from_json_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="not an object"):
            FaultSchedule.from_json(["crash"])
        with pytest.raises(ValueError, match="malformed"):
            FaultSchedule.from_json([{"kind": "crash"}])  # no time
        with pytest.raises(ValueError, match="args"):
            FaultSchedule.from_json(
                [{"time": 1.0, "kind": "crash", "args": "not-a-dict"}]
            )


class TestInjectorExtended:
    def test_slowdown_and_restore_applied(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().slowdown(1.0, "s1", 0.25).restore_speed(3.0, "s1")
        inject(cluster, schedule)
        cluster.run(2.0)
        assert cluster.servers["s1"].daemon.dispatch_delay == 0.25
        cluster.run(2.0)
        assert cluster.servers["s1"].daemon.dispatch_delay == 0.0

    def test_message_adversity_applied_and_cleared(self):
        cluster = make_vod_cluster()
        schedule = (
            FaultSchedule()
            .duplicate(1.0, 0.04)
            .reorder(1.0, 0.03, window=0.1)
            .duplicate(3.0, 0.0)
            .reorder(3.0, 0.0)
        )
        inject(cluster, schedule)
        cluster.run(2.0)
        assert cluster.network.duplicate_probability == 0.04
        assert cluster.network.reorder_probability == 0.03
        cluster.run(2.0)
        assert cluster.network.duplicate_probability == 0.0
        assert cluster.network.reorder_probability == 0.0

    def test_link_delay_spike_applied(self):
        cluster = make_vod_cluster()
        schedule = (
            FaultSchedule()
            .delay_link(1.0, "s0", "s1", 0.2)
            .restore_delay(3.0, "s0", "s1")
        )
        inject(cluster, schedule)
        cluster.run(2.0)
        assert cluster.network._link_extra_delay[("s0", "s1")] == 0.2
        assert cluster.network._link_extra_delay[("s1", "s0")] == 0.2
        cluster.run(2.0)
        assert ("s0", "s1") not in cluster.network._link_extra_delay

    def test_crash_at_arms_hook_on_target(self):
        cluster = make_vod_cluster()
        inject(cluster, FaultSchedule().crash_at(1.0, "s1", "pre-handoff"))
        cluster.run(2.0)
        assert cluster.servers["s1"]._crash_hooks.get("pre-handoff", 0) == 1
        cluster.servers["s1"].disarm_crash_hooks()
        assert not cluster.servers["s1"]._crash_hooks

    def test_every_applied_event_is_traced(self):
        cluster = make_vod_cluster()
        schedule = (
            FaultSchedule()
            .crash(1.0, "s1")
            .recover(2.0, "s1")
            .slowdown(3.0, "s2", 0.1)
            .duplicate(4.0, 0.02)
        )
        inject(cluster, schedule)
        cluster.run(5.0)
        trace = cluster.network.trace
        for kind in ("crash", "recover", "slowdown", "duplicate"):
            assert trace.count(f"fault.{kind}") == 1

    def test_recovery_accounting_symmetric_with_crash(self):
        from repro.core.manager import AvailabilityManager

        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=0.01)
        cluster.availability_manager = manager
        schedule = (
            FaultSchedule()
            .crash(1.0, "s1")
            .recover(3.5, "s1")
            .crash(5.0, "s2")
            .recover(6.0, "s2")
        )
        inject(cluster, schedule)
        cluster.run(8.0)
        assert len(manager.crash_times) == 2
        assert len(manager.recovery_times) == 2
        # each recovery pairs with the latest earlier crash: (2.5 + 1.0) / 2
        assert manager.observed_mean_downtime(cluster.sim.now) == pytest.approx(1.75)

    def test_redundant_recover_not_recorded(self):
        from repro.core.manager import AvailabilityManager

        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=0.01)
        cluster.availability_manager = manager
        # recovering an already-up server is a no-op, not a bogus sample
        inject(cluster, FaultSchedule().recover(1.0, "s1"))
        cluster.run(2.0)
        assert manager.recovery_times == []
