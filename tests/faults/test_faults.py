"""Unit tests for fault schedules, generators, and the injector."""

import numpy as np
import pytest

from repro.faults.generators import (
    crash_burst_schedule,
    flapping_partition_schedule,
    poisson_crash_schedule,
)
from repro.faults.injector import inject
from repro.faults.schedule import FaultEvent, FaultSchedule
from tests.core.conftest import make_vod_cluster


class TestSchedule:
    def test_builder_methods(self):
        schedule = (
            FaultSchedule()
            .crash(1.0, "s0")
            .recover(2.0, "s0")
            .partition(3.0, {"s0"}, {"s1"})
            .heal(4.0)
            .cut_link(5.0, "a", "b")
            .restore_link(6.0, "a", "b")
        )
        assert len(schedule) == 6
        kinds = [e.kind for e in schedule.sorted_events()]
        assert kinds == [
            "crash", "recover", "partition", "heal", "cut_link", "restore_link",
        ]

    def test_sorted_events(self):
        schedule = FaultSchedule().crash(5.0, "b").crash(1.0, "a")
        assert [e.time for e in schedule.sorted_events()] == [1.0, 5.0]

    def test_crashes_filter(self):
        schedule = FaultSchedule().crash(1.0, "a").recover(2.0, "a")
        assert len(schedule.crashes()) == 1

    def test_shifted(self):
        schedule = FaultSchedule().crash(1.0, "a").shifted(10.0)
        assert schedule.sorted_events()[0].time == 11.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="meteor")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind="crash")


class TestGenerators:
    def test_poisson_schedule_alternates_and_respects_spare(self):
        rng = np.random.default_rng(1)
        schedule = poisson_crash_schedule(
            rng, ["s0", "s1", "s2"], duration=100.0,
            failure_rate=0.1, mean_downtime=2.0, spare="s2",
        )
        per_server: dict[str, list[str]] = {}
        for event in schedule.sorted_events():
            per_server.setdefault(event.target, []).append(event.kind)
        assert "s2" not in per_server
        for kinds in per_server.values():
            # strict alternation starting with a crash
            assert kinds[0] == "crash"
            for a, b in zip(kinds, kinds[1:]):
                assert a != b

    def test_poisson_zero_rate_empty(self):
        rng = np.random.default_rng(1)
        schedule = poisson_crash_schedule(
            rng, ["s0"], duration=10.0, failure_rate=0.0
        )
        assert len(schedule) == 0

    def test_poisson_deterministic_per_seed(self):
        a = poisson_crash_schedule(
            np.random.default_rng(7), ["s0", "s1"], 50.0, 0.1
        )
        b = poisson_crash_schedule(
            np.random.default_rng(7), ["s0", "s1"], 50.0, 0.1
        )
        assert [
            (e.time, e.kind, e.target) for e in a.sorted_events()
        ] == [(e.time, e.kind, e.target) for e in b.sorted_events()]

    def test_burst_size_and_window(self):
        rng = np.random.default_rng(2)
        schedule = crash_burst_schedule(
            rng, ["s0", "s1", "s2", "s3"], at=5.0, burst_size=3,
            stagger=0.1, recover_after=2.0,
        )
        crashes = schedule.crashes()
        assert len(crashes) == 3
        assert all(5.0 <= e.time <= 5.2 for e in crashes)
        assert len([e for e in schedule.events if e.kind == "recover"]) == 3

    def test_burst_capped_at_population(self):
        rng = np.random.default_rng(2)
        schedule = crash_burst_schedule(rng, ["s0"], at=1.0, burst_size=5)
        assert len(schedule.crashes()) == 1

    def test_flapping_partitions_alternate(self):
        rng = np.random.default_rng(3)
        schedule = flapping_partition_schedule(
            rng, ["s0"], ["s1"], duration=100.0,
            mean_stable=2.0, mean_partitioned=1.0,
        )
        kinds = [e.kind for e in schedule.sorted_events()]
        assert kinds and kinds[0] == "partition"
        for a, b in zip(kinds, kinds[1:]):
            assert a != b


class TestInjector:
    def test_crash_and_recover_applied(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().crash(1.0, "s1").recover(3.0, "s1")
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.servers["s1"].is_up()
        cluster.run(2.0)
        assert cluster.servers["s1"].is_up()

    def test_partition_and_heal_applied(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().partition(1.0, {"s0"}, {"s1", "s2"}).heal(3.0)
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.network.topology.connected("s0", "s1")
        cluster.run(2.0)
        assert cluster.network.topology.connected("s0", "s1")

    def test_cut_and_restore_link(self):
        cluster = make_vod_cluster()
        schedule = (
            FaultSchedule().cut_link(1.0, "s0", "s1").restore_link(2.0, "s0", "s1")
        )
        inject(cluster, schedule)
        cluster.run(1.5)
        assert not cluster.network.topology.connected("s0", "s1")
        cluster.run(1.0)
        assert cluster.network.topology.connected("s0", "s1")

    def test_offset_defaults_to_now(self):
        cluster = make_vod_cluster()
        cluster.run(5.0)
        schedule = FaultSchedule().crash(1.0, "s0")
        inject(cluster, schedule)
        cluster.run(0.5)
        assert cluster.servers["s0"].is_up()
        cluster.run(1.0)
        assert not cluster.servers["s0"].is_up()

    def test_redundant_events_harmless(self):
        cluster = make_vod_cluster()
        schedule = FaultSchedule().crash(1.0, "s0").crash(1.5, "s0")
        inject(cluster, schedule)
        cluster.run(2.0)
        assert not cluster.servers["s0"].is_up()

    def test_unknown_server_ignored(self):
        cluster = make_vod_cluster()
        inject(cluster, FaultSchedule().crash(1.0, "ghost"))
        cluster.run(2.0)  # should not raise
