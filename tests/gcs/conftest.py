"""Shared fixtures and helpers for GCS tests."""

from __future__ import annotations

import pytest

from repro.gcs.daemon import GcsDaemon
from repro.gcs.client_api import GcsClient
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Network
from repro.sim.topology import Topology
from repro.sim.trace import TraceLog


class RecordingApp:
    """A GcsApplication that records every callback."""

    def __init__(self) -> None:
        self.configs = []
        self.group_views = []
        self.messages = []  # (group, origin_request_id, payload, seq)
        self.ptp = []  # (sender, payload)

    def on_config_view(self, config):
        self.configs.append(config)

    def on_group_view(self, view):
        self.group_views.append(view)

    def on_group_message(self, group, origin, payload, seq):
        self.messages.append((group, origin, payload, seq))

    def on_ptp(self, sender, payload):
        self.ptp.append((sender, payload))

    def payloads(self, group=None):
        return [
            payload
            for g, _origin, payload, _seq in self.messages
            if group is None or g == group
        ]

    def last_view(self, group):
        views = [v for v in self.group_views if v.group == group]
        return views[-1] if views else None


class ClientApp:
    """A GcsClientApplication that records callbacks."""

    def __init__(self) -> None:
        self.ptp = []
        self.failed = []

    def on_ptp(self, sender, payload):
        self.ptp.append((sender, payload))

    def on_send_failed(self, group, payload):
        self.failed.append((group, payload))


class GcsWorld:
    """A small test cluster: simulator, network, N daemons with apps."""

    def __init__(self, n_daemons: int, settings: GcsSettings | None = None):
        self.sim = Simulator()
        self.trace = TraceLog()
        self.network = Network(
            self.sim, Topology(), FixedLatency(0.002), trace=self.trace
        )
        self.settings = settings or GcsSettings()
        self.monitor = SpecMonitor()
        self.daemon_ids = [f"s{i}" for i in range(n_daemons)]
        self.apps = {}
        self.daemons = {}
        for node_id in self.daemon_ids:
            app = RecordingApp()
            daemon = GcsDaemon(
                node_id,
                self.network,
                world=self.daemon_ids,
                app=app,
                settings=self.settings,
                monitor=self.monitor,
            )
            daemon.start()
            self.apps[node_id] = app
            self.daemons[node_id] = daemon

    def add_client(self, client_id: str, contacts=None, app=None):
        app = app or ClientApp()
        client = GcsClient(
            client_id,
            self.network,
            contacts=contacts or self.daemon_ids,
            app=app,
            settings=self.settings,
        )
        client.start()
        return client, app

    def run(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration, max_events=2_000_000)

    def settle(self) -> None:
        """Run long enough for membership to converge after a change."""
        self.run(3.0)

    def configs(self):
        return {node: d.config for node, d in self.daemons.items()}

    def assert_single_view(self, expected_members=None):
        """All live daemons share one configuration with the given members."""
        live = [d for d in self.daemons.values() if d.is_up()]
        views = {d.config.view_id for d in live}
        assert len(views) == 1, f"multiple configs among live daemons: {views}"
        if expected_members is not None:
            assert set(live[0].config.members) == set(expected_members)

    def check_spec(self):
        self.monitor.check_all()


@pytest.fixture
def world3():
    world = GcsWorld(3)
    world.settle()
    return world


@pytest.fixture
def world5():
    world = GcsWorld(5)
    world.settle()
    return world
