"""Sequencer batching and heartbeat piggybacking (GCS hot-path tuning).

Batching must be transparent to every virtual-synchrony property: the
property suite runs with it on (the default) and off; these tests cover
the batching-specific edges — the wire-level win, a batch split across a
view change, NACKs answered with batches, duplicate batch delivery, and
heartbeat suppression on busy links.
"""

from __future__ import annotations

import pytest

from repro.gcs.messages import NackSeqs, SequencedBatch
from repro.gcs.settings import GcsSettings
from tests.gcs.conftest import GcsWorld


def _join_all(world, group="g"):
    for node in world.daemon_ids:
        world.daemons[node].join(group)
    world.run(1.0)


class TestBatchingWire:
    def test_burst_is_batched_into_fewer_messages(self):
        """A burst submitted within one window leaves the sequencer as a
        handful of SequencedBatch messages, not one unicast per request
        per member."""
        world = GcsWorld(4, settings=GcsSettings(batch_window=0.005, batch_max=64))
        world.settle()
        _join_all(world)
        world.network.reset_stats()
        for i in range(30):
            world.daemons["s0"].mcast("g", i)
        world.run(2.0)
        for node in world.daemon_ids:
            assert world.apps[node].payloads("g") == list(range(30))
        batches = world.network.sent_count("s0", "gcs.sequenced_batch")
        singles = world.network.sent_count("s0", "gcs.sequenced")
        assert singles == 0
        # 30 messages to 3 peers unbatched would be 90 sends; batched it
        # collapses to a few windows' worth.
        assert batches <= 9

    def test_zero_window_restores_unbatched_wire_format(self):
        world = GcsWorld(3, settings=GcsSettings(batch_window=0.0))
        world.settle()
        _join_all(world)
        world.network.reset_stats()
        for i in range(10):
            world.daemons["s1"].mcast("g", i)
        world.run(2.0)
        for node in world.daemon_ids:
            assert world.apps[node].payloads("g") == list(range(10))
        assert world.network.sent_count("s0", "gcs.sequenced_batch") == 0
        assert world.network.sent_count("s0", "gcs.sequenced") > 0

    def test_batch_max_flushes_early(self):
        """batch_max bounds batching latency even within one window."""
        world = GcsWorld(3, settings=GcsSettings(batch_window=0.5, batch_max=4))
        world.settle()
        _join_all(world)
        world.run(2.0)  # let the (slow-window) join events fully settle
        for i in range(8):
            world.daemons["s0"].mcast("g", i)
        # Run far less than one window: only the batch_max trigger can
        # have disseminated the burst.
        world.run(0.2)
        for node in world.daemon_ids:
            assert world.apps[node].payloads("g") == list(range(8))


class TestBatchViewChangeAndDuplicates:
    def test_batch_split_across_view_change(self):
        """Messages buffered when a member dies are never lost: whatever
        was not flushed before the view change is carried into the new
        view by the flush union (the sequencer holds them in its own
        holdback from the instant of sequencing)."""
        world = GcsWorld(4, settings=GcsSettings(batch_window=0.05, batch_max=500))
        world.settle()
        _join_all(world)
        for i in range(20):
            world.daemons["s1"].mcast("g", i)
        # crash a member mid-window, before the batch timer can fire
        world.daemons["s3"].crash()
        world.settle()
        survivors = [n for n in world.daemon_ids if world.daemons[n].is_up()]
        for node in survivors:
            assert sorted(world.apps[node].payloads("g")) == list(range(20)), node
        world.check_spec()

    def test_sequencer_crash_with_buffered_batch(self):
        """If the sequencer itself dies with a buffered batch, survivors
        re-drive their pending requests into the new configuration."""
        world = GcsWorld(3, settings=GcsSettings(batch_window=0.05, batch_max=500))
        world.settle()
        _join_all(world)
        assert world.daemons["s0"].config.sequencer == "s0"
        for i in range(10):
            world.daemons["s1"].mcast("g", i)
        world.run(0.01)  # requests reach the sequencer; window still open
        world.daemons["s0"].crash()
        world.settle()
        world.run(2.0)
        for node in ("s1", "s2"):
            assert sorted(world.apps[node].payloads("g")) == list(range(10)), node
        world.check_spec()

    def test_duplicate_batch_delivery_is_idempotent(self):
        """Replaying a batch (as a NACK retransmission would) neither
        duplicates deliveries nor disturbs ordering."""
        world = GcsWorld(3)
        world.settle()
        _join_all(world)
        for i in range(5):
            world.daemons["s0"].mcast("g", i)
        world.run(1.0)
        target = world.daemons["s2"]
        held = [
            target.holdback.get(seq)
            for seq in sorted(target.holdback.all_received())
        ]
        replay = SequencedBatch(
            config_view_id=target.config.view_id, messages=tuple(held)
        )
        target._on_sequenced_batch(replay)
        target._on_sequenced_batch(replay)
        world.run(0.5)
        assert world.apps["s2"].payloads("g") == list(range(5))
        world.check_spec()

    def test_nack_answered_with_batch(self):
        """A gap NACK is answered by one batch carrying the missing run."""
        world = GcsWorld(3)
        world.settle()
        _join_all(world)
        for i in range(6):
            world.daemons["s1"].mcast("g", i)
        world.run(1.0)
        sequencer = world.daemons["s0"]
        held = sorted(sequencer.holdback.all_received())
        before = world.network.sent_count("s0", "gcs.sequenced_batch")
        sequencer._on_nack_seqs(
            NackSeqs(
                config_view_id=sequencer.config.view_id, seqs=tuple(held[:4])
            ),
            sender="s2",
        )
        after = world.network.sent_count("s0", "gcs.sequenced_batch")
        assert after == before + 1


class TestHeartbeatPiggybacking:
    def test_traffic_suppresses_heartbeats(self):
        """Under a steady multicast load, member↔sequencer links carry
        fewer explicit heartbeats than the idle all-pairs baseline."""
        def heartbeats_under_load(settings):
            world = GcsWorld(4, settings=settings)
            world.settle()
            _join_all(world)
            world.network.reset_stats()
            for step in range(40):
                world.daemons["s1"].mcast("g", step)
                world.run(0.05)
            return sum(
                world.network.sent_count(n, "gcs.heartbeat")
                for n in world.daemon_ids
            )

        suppressed = heartbeats_under_load(GcsSettings())
        baseline = heartbeats_under_load(GcsSettings(piggyback_liveness=False))
        assert suppressed < baseline

    def test_no_false_suspicion_under_suppression(self):
        """Piggybacked liveness keeps the failure detector quiet: a busy
        run with suppression on sees no spurious view changes."""
        world = GcsWorld(4)
        world.settle()
        views_before = {n: world.daemons[n].config.view_id for n in world.daemon_ids}
        for step in range(60):
            world.daemons["s1"].mcast("g", step)
            world.run(0.05)
        views_after = {n: world.daemons[n].config.view_id for n in world.daemon_ids}
        assert views_before == views_after
        world.check_spec()

    def test_crash_still_detected_with_piggybacking(self):
        """Suppression must not blind the detector: a real crash still
        converges to a view without the dead member."""
        world = GcsWorld(4)
        world.settle()
        _join_all(world)
        for step in range(10):
            world.daemons["s1"].mcast("g", step)
            world.run(0.05)
        world.daemons["s2"].crash()
        world.settle()
        world.assert_single_view(
            expected_members={"s0", "s1", "s3"}
        )
        world.check_spec()


@pytest.mark.parametrize("batching", [True, False])
def test_end_to_end_delivery_both_modes(batching):
    settings = GcsSettings() if batching else GcsSettings(batch_window=0.0)
    world = GcsWorld(5, settings=settings)
    world.settle()
    _join_all(world)
    for i in range(25):
        world.daemons[world.daemon_ids[i % 5]].mcast("g", i)
    world.run(3.0)
    reference = world.apps["s0"].payloads("g")
    assert sorted(reference) == list(range(25))
    for node in world.daemon_ids[1:]:
        assert world.apps[node].payloads("g") == reference, node
    world.check_spec()
