"""Client (open-group) access layer tests."""

from tests.gcs.conftest import GcsWorld


def make_world_with_group():
    world = GcsWorld(3)
    world.settle()
    for node in ("s0", "s1", "s2"):
        world.daemons[node].join("g")
    world.run(1.0)
    return world


def test_client_mcast_reaches_group_members():
    world = make_world_with_group()
    client, _ = world.add_client("c0")
    client.mcast("g", {"op": "start"})
    world.run(1.0)
    for node in ("s0", "s1", "s2"):
        assert world.apps[node].payloads("g") == [{"op": "start"}]


def test_client_is_not_a_group_member():
    world = make_world_with_group()
    client, app = world.add_client("c0")
    client.mcast("g", "x")
    world.run(1.0)
    assert app.ptp == []  # ordered multicasts do not come back to clients


def test_client_messages_are_fifo():
    world = make_world_with_group()
    client, _ = world.add_client("c0")
    for i in range(15):
        client.mcast("g", i)
    world.run(2.0)
    assert world.apps["s1"].payloads("g") == list(range(15))


def test_client_rotates_contact_when_first_is_dead():
    world = make_world_with_group()
    world.daemons["s0"].crash()
    world.settle()
    client, app = world.add_client("c0", contacts=["s0", "s1", "s2"])
    client.mcast("g", "retry-me")
    world.run(3.0)
    assert world.apps["s1"].payloads("g") == ["retry-me"]
    assert world.apps["s2"].payloads("g") == ["retry-me"]
    assert app.failed == []
    assert client.unacked_count == 0


def test_client_retry_does_not_duplicate_delivery():
    """A slow ack (dead first contact) forces a retransmit through another
    contact; the duplicate filter must keep delivery single."""
    world = make_world_with_group()
    client, _ = world.add_client("c0", contacts=["s1", "s2"])
    # Cut the client->s1 link just for the first transmission window.
    world.network.topology.cut_link("c0", "s1")
    client.mcast("g", "once")
    world.run(0.5)
    world.network.topology.restore_link("c0", "s1")
    world.run(3.0)
    for node in ("s0", "s1", "s2"):
        assert world.apps[node].payloads("g") == ["once"]
    world.check_spec()


def test_client_send_failed_after_all_contacts_unreachable():
    world = make_world_with_group()
    client, app = world.add_client("c0")
    world.network.topology.partition({"c0"}, {"s0", "s1", "s2"})
    client.mcast("g", "void")
    world.run(60.0)
    assert app.failed == [("g", "void")]
    assert client.sends_failed == 1


def test_server_response_ptp_to_client():
    world = make_world_with_group()
    client, app = world.add_client("c0")
    world.daemons["s0"].send_ptp("c0", {"frame": 1})
    world.run(0.5)
    assert app.ptp == [("s0", {"frame": 1})]


def test_two_clients_interleave_in_total_order():
    world = make_world_with_group()
    c0, _ = world.add_client("c0")
    c1, _ = world.add_client("c1")
    for i in range(5):
        c0.mcast("g", ("c0", i))
        c1.mcast("g", ("c1", i))
    world.run(2.0)
    seqs = [world.apps[n].payloads("g") for n in ("s0", "s1", "s2")]
    assert seqs[0] == seqs[1] == seqs[2]
    assert len(seqs[0]) == 10


def test_client_requires_contacts():
    import pytest

    from repro.gcs.client_api import GcsClient

    world = GcsWorld(1)
    with pytest.raises(ValueError):
        GcsClient("c0", world.network, contacts=[])


def test_crashed_client_stops_retrying():
    world = make_world_with_group()
    client, app = world.add_client("c0")
    world.network.topology.partition({"c0"}, {"s0", "s1", "s2"})
    client.mcast("g", "void")
    world.run(0.3)
    client.crash()
    world.run(30.0)
    assert app.failed == []  # crashed before exhausting retries
