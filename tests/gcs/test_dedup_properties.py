"""Property tests for the SACK-style duplicate filter and the membership
event guard — the out-of-order retransmission hazards of DESIGN.md §6."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gcs.messages import RequestId
from repro.gcs.ordering import DuplicateFilter


@given(
    st.lists(
        st.integers(min_value=0, max_value=60), min_size=1, max_size=120
    )
)
def test_filter_semantics_match_a_plain_set(deliveries):
    """For any delivery order (duplicates, gaps, out-of-order), the filter
    must behave exactly like a delivered-set: accept first occurrences,
    reject repeats."""
    f = DuplicateFilter()
    reference: set[int] = set()
    for counter in deliveries:
        rid = RequestId("origin", 0, counter)
        expected_dup = counter in reference
        assert f.is_duplicate(rid) == expected_dup
        if not expected_dup:
            f.mark_delivered(rid)
            reference.add(counter)


@given(
    st.lists(st.integers(min_value=0, max_value=40), max_size=60),
    st.lists(st.integers(min_value=0, max_value=40), max_size=60),
)
def test_merge_equals_union(deliveries_a, deliveries_b):
    """Merging two filters' snapshots yields exactly the union of their
    delivered sets."""
    fa, fb = DuplicateFilter(), DuplicateFilter()
    for counter in deliveries_a:
        fa.mark_delivered(RequestId("x", 0, counter))
    for counter in deliveries_b:
        fb.mark_delivered(RequestId("x", 0, counter))
    merged = DuplicateFilter()
    merged.merge(fa.snapshot())
    merged.merge(fb.snapshot())
    union = set(deliveries_a) | set(deliveries_b)
    for counter in range(45):
        rid = RequestId("x", 0, counter)
        assert merged.is_duplicate(rid) == (counter in union), counter


@given(
    st.lists(st.integers(min_value=0, max_value=40), max_size=50),
    st.lists(st.integers(min_value=0, max_value=40), max_size=50),
)
def test_merge_snapshots_commutative(a, b):
    fa, fb = DuplicateFilter(), DuplicateFilter()
    for c in a:
        fa.mark_delivered(RequestId("x", 0, c))
    for c in b:
        fb.mark_delivered(RequestId("x", 0, c))
    ab = DuplicateFilter.merge_snapshots([fa.snapshot(), fb.snapshot()])
    ba = DuplicateFilter.merge_snapshots([fb.snapshot(), fa.snapshot()])
    assert ab == ba


def test_snapshot_roundtrip():
    f = DuplicateFilter()
    for counter in (0, 1, 5, 7):
        f.mark_delivered(RequestId("x", 0, counter))
    g = DuplicateFilter()
    g.merge(f.snapshot())
    for counter in range(10):
        rid = RequestId("x", 0, counter)
        assert g.is_duplicate(rid) == f.is_duplicate(rid)


class TestMembershipEventGuard:
    """A late retransmitted join must never undo a newer leave."""

    def test_stale_join_after_leave_ignored(self):
        from tests.gcs.conftest import GcsWorld
        from repro.gcs.messages import RequestId

        world = GcsWorld(2)
        world.settle()
        daemon = world.daemons["s0"]
        # simulate ordered delivery: join (counter 10), leave (counter 11),
        # then the join again as a late retransmission
        daemon._apply_membership_event(
            ("join", "g", "s0"), 1, RequestId("s0", 0, 10)
        )
        assert "s0" in daemon.group_map.members("g")
        daemon._apply_membership_event(
            ("leave", "g", "s0"), 2, RequestId("s0", 0, 11)
        )
        assert "s0" not in daemon.group_map.members("g")
        daemon._apply_membership_event(
            ("join", "g", "s0"), 3, RequestId("s0", 0, 10)
        )
        assert "s0" not in daemon.group_map.members("g")  # stale, ignored

    def test_new_incarnation_not_blocked(self):
        from tests.gcs.conftest import GcsWorld
        from repro.gcs.messages import RequestId

        world = GcsWorld(2)
        world.settle()
        daemon = world.daemons["s0"]
        daemon._apply_membership_event(
            ("leave", "g", "s0"), 1, RequestId("s0", 0, 99)
        )
        daemon._apply_membership_event(
            ("join", "g", "s0"), 2, RequestId("s0", 1, 0)  # restarted node
        )
        assert "s0" in daemon.group_map.members("g")
