"""Unit tests for the mesh failure detector: the O(1) idle-check bound
and the stale-incarnation guard."""

from repro.gcs.failure_detector import FailureDetector
from repro.gcs.messages import Heartbeat


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_detector(timeout=0.35):
    clock = Clock()
    changes = []
    detector = FailureDetector(
        "me", timeout, clock, lambda: changes.append(clock.now)
    )
    return detector, clock, changes


def beat(peer, incarnation=0, view_counter=0):
    return Heartbeat(peer, incarnation, view_counter)


# ---------------------------------------------------------------------------
# next-expiry bound: an idle check must not rescan the peer table
# ---------------------------------------------------------------------------


def test_idle_checks_are_o1_until_the_bound_passes():
    detector, clock, _ = make_detector(timeout=1.0)
    for i in range(50):
        detector.on_heartbeat(beat(f"p{i}"))
    # well before any peer can expire: every check returns on the bound
    for _ in range(10):
        clock.now += 0.05
        detector.check()
    assert detector.idle_checks == 10
    assert detector.full_scans == 0
    # past the bound: exactly one full scan, which expires everyone
    clock.now = 2.5
    detector.check()
    assert detector.full_scans == 1
    assert detector.alive_peers() == frozenset()
    # with nobody alive the bound is +inf again: back to O(1) idling
    clock.now = 100.0
    detector.check()
    assert detector.idle_checks == 11
    assert detector.full_scans == 1


def test_bound_never_misses_an_expiry():
    """Refreshes push real deadlines later than the recorded bound (the
    bound is allowed to be stale-low, costing a redundant scan — but an
    expired peer must be caught the first time the clock passes its
    deadline)."""
    detector, clock, _ = make_detector(timeout=1.0)
    detector.on_heartbeat(beat("a"))
    detector.on_heartbeat(beat("b"))
    clock.now = 0.9
    detector.on_heartbeat(beat("b"))  # refresh b; a expires at 1.0
    clock.now = 1.01
    detector.check()
    assert detector.alive_peers() == frozenset({"b"})
    # b's refreshed deadline is 1.9; the scan recomputed the bound to it
    clock.now = 1.5
    detector.check()
    assert "b" in detector.alive_peers()
    clock.now = 1.91
    detector.check()
    assert detector.alive_peers() == frozenset()


def test_reviving_peer_rearms_the_bound():
    detector, clock, _ = make_detector(timeout=1.0)
    detector.on_heartbeat(beat("a"))
    clock.now = 2.0
    detector.check()
    assert detector.alive_peers() == frozenset()
    # silence forever would keep the bound at +inf; a revival must re-arm
    detector.on_heartbeat(beat("a"))
    clock.now = 3.5
    detector.check()
    assert detector.alive_peers() == frozenset()


def test_observe_traffic_on_new_peer_arms_bound():
    detector, clock, _ = make_detector(timeout=1.0)
    detector.on_heartbeat(beat("a"))
    clock.now = 2.0
    detector.check()  # a expired; bound now +inf
    detector.observe_traffic("a")  # revived through piggybacked traffic
    clock.now = 3.5
    detector.check()
    assert detector.alive_peers() == frozenset()


# ---------------------------------------------------------------------------
# stale incarnations
# ---------------------------------------------------------------------------


def test_lower_incarnation_heartbeat_is_ignored():
    detector, clock, changes = make_detector(timeout=1.0)
    detector.on_heartbeat(beat("a", incarnation=3))
    clock.now = 0.99
    stale = len(changes)
    detector.on_heartbeat(beat("a", incarnation=2))
    # neither the incarnation nor the liveness clock moved
    assert detector.incarnation_of("a") == 3
    assert len(changes) == stale
    clock.now = 1.01
    detector.check()
    assert detector.alive_peers() == frozenset(), (
        "a stale pre-restart heartbeat must not extend aliveness"
    )


def test_lower_incarnation_does_not_resurrect_expired_peer():
    detector, clock, _ = make_detector(timeout=1.0)
    detector.on_heartbeat(beat("a", incarnation=5))
    clock.now = 2.0
    detector.check()
    assert detector.alive_peers() == frozenset()
    detector.on_heartbeat(beat("a", incarnation=4))
    assert detector.alive_peers() == frozenset()
    assert detector.incarnation_of("a") == 5


def test_higher_incarnation_still_fires_change():
    detector, _clock, changes = make_detector()
    detector.on_heartbeat(beat("a", incarnation=0))
    before = len(changes)
    detector.on_heartbeat(beat("a", incarnation=1))
    assert detector.incarnation_of("a") == 1
    assert len(changes) == before + 1
