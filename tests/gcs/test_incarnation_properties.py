"""Property tests for incarnation handling in both failure detectors
(alongside ``test_dedup_properties.py``): recorded incarnations are
monotone under any heartbeat order, and SWIM self-refutation bumps the
epoch exactly once per superseding observation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gcs.failure_detector import FailureDetector
from repro.gcs.messages import Heartbeat, SwimPing, SwimUpdate
from repro.gcs.settings import GcsSettings
from repro.gcs.swim import SWIM_DEAD, SWIM_SUSPECT, SwimDetector


# ---------------------------------------------------------------------------
# mesh detector: incarnation monotonicity
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40))
def test_mesh_recorded_incarnation_is_running_max(incarnations):
    """For ANY interleaving of heartbeat incarnations (restarts racing
    stale in-flight traffic), the detector tracks exactly the running
    maximum — lower values never roll it back or count as liveness."""
    clock = [0.0]
    detector = FailureDetector("me", 1.0, lambda: clock[0], lambda: None)
    running_max = None
    for incarnation in incarnations:
        clock[0] += 0.01
        detector.on_heartbeat(Heartbeat("peer", incarnation, 0))
        running_max = (
            incarnation
            if running_max is None
            else max(running_max, incarnation)
        )
        assert detector.incarnation_of("peer") == running_max


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=4),
)
def test_mesh_stale_heartbeat_never_extends_aliveness(new_inc, age):
    """After hearing incarnation ``new_inc``, a heartbeat from any older
    incarnation must not refresh the liveness clock."""
    old_inc = new_inc - 1 - age if new_inc - 1 - age >= 0 else 0
    if old_inc >= new_inc:
        return
    clock = [0.0]
    detector = FailureDetector("me", 1.0, lambda: clock[0], lambda: None)
    detector.on_heartbeat(Heartbeat("peer", new_inc, 0))
    clock[0] = 0.99
    detector.on_heartbeat(Heartbeat("peer", old_inc, 0))
    clock[0] = 1.01
    detector.check()
    assert detector.alive_peers() == frozenset()


# ---------------------------------------------------------------------------
# SWIM detector: exactly-once refutation
# ---------------------------------------------------------------------------


def make_swim():
    sent = []
    detector = SwimDetector(
        "n0",
        ["n0", "n1", "n2"],
        GcsSettings(membership_mode="gossip"),
        lambda: 0.0,
        lambda: None,
        lambda dest, payload, kind, size: sent.append((dest, payload, kind)),
        lambda: (0, 0, None),
        lambda delay, cb: None,
    )
    return detector, sent


@given(
    st.lists(
        st.tuples(
            st.sampled_from([SWIM_SUSPECT, SWIM_DEAD]),
            st.integers(min_value=0, max_value=8),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_swim_refutation_bumps_epoch_exactly_once(observations):
    """Feed the detector ANY sequence of suspect/dead gossip about
    itself.  The reference semantics: an observation at epoch ``e`` is
    superseding iff ``e >= my_epoch``; each superseding observation bumps
    ``my_epoch`` to ``e + 1`` exactly once, and an already-refuted epoch
    never bumps again (so replayed gossip cannot make a node inflate its
    epoch unboundedly)."""
    detector, _sent = make_swim()
    model_epoch = 0
    model_refutations = 0
    for seq, (status, epoch) in enumerate(observations):
        update = SwimUpdate("n0", status, 0, epoch)
        detector.on_message(
            SwimPing("n1", 0, 0, None, seq, None, (update,)), "n1"
        )
        if epoch >= model_epoch:
            model_epoch = epoch + 1
            model_refutations += 1
        assert detector._my_epoch == model_epoch
        assert detector.refutations_sent == model_refutations


@given(st.integers(min_value=0, max_value=8))
def test_swim_duplicate_suspicion_refuted_once(epoch):
    """The SAME suspicion delivered twice (gossip redundancy guarantees
    duplicates) must produce exactly one epoch bump."""
    detector, _sent = make_swim()
    update = SwimUpdate("n0", SWIM_SUSPECT, 0, epoch)
    detector.on_message(SwimPing("n1", 0, 0, None, 0, None, (update,)), "n1")
    detector.on_message(SwimPing("n1", 0, 0, None, 1, None, (update,)), "n1")
    assert detector.refutations_sent == 1
    assert detector._my_epoch == epoch + 1


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(
        st.tuples(
            st.sampled_from([0, SWIM_SUSPECT, SWIM_DEAD]),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=30,
    ),
)
def test_swim_peer_incarnation_monotone_under_gossip(direct_inc, gossip):
    """However stale gossip interleaves, a peer's recorded incarnation
    never decreases, and gossip about an older incarnation can never
    resurrect a peer the detector heard directly at a newer one."""
    detector, _sent = make_swim()
    detector.on_message(SwimPing("n1", direct_inc, 0, None, 0, None, ()), "n1")
    for seq, (status, incarnation, epoch) in enumerate(gossip):
        update = SwimUpdate("n1", status, incarnation, epoch)
        detector.on_message(
            SwimPing("n2", 0, 0, None, seq + 1, None, (update,)), "n2"
        )
        recorded = detector.incarnation_of("n1")
        assert recorded is not None and recorded >= direct_inc
