"""GCS behaviour over lossy links: NACK-based retransmission keeps the
total order reliable even when the wire drops messages."""

import numpy as np
import pytest

from repro.gcs.client_api import GcsClient
from repro.gcs.daemon import GcsDaemon
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Network
from repro.sim.topology import Topology
from tests.gcs.conftest import ClientApp, RecordingApp


def lossy_world(n_daemons: int, loss: float, seed: int = 5):
    sim = Simulator()
    network = Network(
        sim,
        Topology(),
        FixedLatency(0.002),
        loss_probability=loss,
        loss_rng=np.random.default_rng(seed),
    )
    monitor = SpecMonitor()
    names = [f"s{i}" for i in range(n_daemons)]
    apps, daemons = {}, {}
    for name in names:
        app = RecordingApp()
        daemon = GcsDaemon(
            name, network, world=names, app=app,
            settings=GcsSettings(), monitor=monitor,
        )
        daemon.start()
        apps[name] = app
        daemons[name] = daemon
    sim.run_until(4.0)
    return sim, network, daemons, apps, monitor


def test_network_rejects_bad_loss_config():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss_probability=1.5, loss_rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        Network(sim, loss_probability=0.1)  # no rng


def test_network_drops_fraction_of_messages():
    sim = Simulator()
    network = Network(
        sim, Topology(), FixedLatency(0.001),
        loss_probability=0.3, loss_rng=np.random.default_rng(1),
    )
    received = []
    network.attach("a", received.append, lambda: True)
    network.attach("b", received.append, lambda: True)
    for _ in range(500):
        network.send("a", "b", "x")
    sim.run()
    assert 280 <= len(received) <= 420  # ~70% of 500


def test_self_messages_never_lost():
    sim = Simulator()
    network = Network(
        sim, Topology(), FixedLatency(0.001),
        loss_probability=0.5, loss_rng=np.random.default_rng(1),
    )
    received = []
    network.attach("a", received.append, lambda: True)
    for _ in range(50):
        network.send("a", "a", "x")
    sim.run()
    assert len(received) == 50


@pytest.mark.parametrize("loss", [0.05, 0.15])
def test_total_order_complete_despite_loss(loss):
    sim, network, daemons, apps, monitor = lossy_world(3, loss)
    for daemon in daemons.values():
        daemon.join("g")
    sim.run_until(sim.now + 2.0)
    for index in range(40):
        daemons[f"s{index % 3}"].mcast("g", index)
    sim.run_until(sim.now + 12.0)
    for name, app in apps.items():
        payloads = app.payloads("g")
        assert sorted(payloads) == list(range(40)), (name, sorted(payloads))
    monitor.check_all()


def test_client_injection_survives_loss():
    sim, network, daemons, apps, monitor = lossy_world(3, 0.15)
    for daemon in daemons.values():
        daemon.join("g")
    sim.run_until(sim.now + 2.0)
    client_app = ClientApp()
    client = GcsClient(
        "c0", network, contacts=list(daemons), app=client_app,
        settings=GcsSettings(),
    )
    client.start()
    for index in range(20):
        client.mcast("g", index)
    sim.run_until(sim.now + 15.0)
    assert sorted(apps["s0"].payloads("g")) == list(range(20))
    assert client.unacked_count == 0
    assert client_app.failed == []
    monitor.check_all()


def test_membership_converges_despite_loss():
    sim, network, daemons, apps, monitor = lossy_world(4, 0.1)
    sim.run_until(sim.now + 4.0)
    views = {d.config.view_id for d in daemons.values()}
    assert len(views) == 1
    assert set(next(iter(daemons.values())).config.members) == set(daemons)


# ---------------------------------------------------------------------------
# randomized safety under loss
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    loss=st.sampled_from([0.02, 0.08, 0.15]),
    crash_index=st.integers(min_value=0, max_value=2),
    n_messages=st.integers(min_value=5, max_value=25),
)
def test_safety_under_loss_and_crash(loss, crash_index, n_messages):
    """Randomized loss rates, crash positions and message counts.

    Note what is and is not guaranteed: survivors that raced the crash
    through *different* view paths (e.g. one detoured via a singleton
    view) may legally disagree about messages from the interim window —
    partitionable virtual synchrony constrains only members that move
    together, and reconciling divergent histories is the layer above's
    job (the framework's unit-database merge).  What must always hold:
    the spec safety properties, each origin's own messages delivered at
    least to itself, and full agreement for everything submitted after
    the survivors share a configuration again."""
    sim, network, daemons, apps, monitor = lossy_world(
        3, loss, seed=crash_index * 100 + n_messages
    )
    for daemon in daemons.values():
        daemon.join("g")
    sim.run_until(sim.now + 2.0)
    names = sorted(daemons)
    for index in range(n_messages):
        daemons[names[index % 3]].mcast("g", index)
    daemons[names[crash_index]].crash()
    sim.run_until(sim.now + 12.0)
    survivors = [n for n in names if daemons[n].is_up()]
    for name in survivors:
        # no survivor may be left with a stuck request: everything it
        # submitted was either delivered (possibly in a component it had
        # diverged from — the framework's unit-DB merge reconciles that
        # case) or is still being retransmitted (pending); after 12
        # quiet seconds, pending must have drained.
        assert len(daemons[name].pending) == 0, name
    # wait until the survivors actually share a configuration (heavy loss
    # can stretch reformation), then post-merge traffic must be totally
    # ordered and agreed
    deadline = sim.now + 30.0
    while sim.now < deadline:
        views = {daemons[n].config.view_id for n in survivors}
        forming = any(daemons[n].membership.forming for n in survivors)
        if len(views) == 1 and not forming:
            break
        sim.run_until(sim.now + 0.25)
    assert len({daemons[n].config.view_id for n in survivors}) == 1
    for offset, name in enumerate(survivors):
        daemons[name].mcast("g", ("fresh", offset))
    sim.run_until(sim.now + 8.0)
    fresh = [
        [p for p in apps[n].payloads("g") if isinstance(p, tuple)]
        for n in survivors
    ]
    assert fresh[0] == fresh[1]
    assert len(fresh[0]) == len(survivors)
    monitor.check_all()
