"""Membership tests: bootstrap, crash, recovery, partitions, merges."""

from tests.gcs.conftest import GcsWorld


def test_bootstrap_converges_to_single_view(world3):
    world3.assert_single_view(expected_members={"s0", "s1", "s2"})
    world3.check_spec()


def test_bootstrap_five_daemons(world5):
    world5.assert_single_view(expected_members={f"s{i}" for i in range(5)})
    world5.check_spec()


def test_all_daemons_agree_on_sequencer(world3):
    sequencers = {d.config.sequencer for d in world3.daemons.values()}
    assert sequencers == {"s0"}


def test_crash_removes_member_from_view(world3):
    world3.daemons["s2"].crash()
    world3.settle()
    world3.assert_single_view(expected_members={"s0", "s1"})
    world3.check_spec()


def test_crash_of_sequencer_elects_new_view(world3):
    world3.daemons["s0"].crash()
    world3.settle()
    world3.assert_single_view(expected_members={"s1", "s2"})
    assert world3.daemons["s1"].config.sequencer == "s1"
    world3.check_spec()


def test_recovery_rejoins_view_with_new_incarnation(world3):
    world3.daemons["s1"].crash()
    world3.settle()
    world3.daemons["s1"].recover()
    world3.settle()
    world3.assert_single_view(expected_members={"s0", "s1", "s2"})
    assert world3.daemons["s1"].incarnation == 1
    world3.check_spec()


def test_partition_forms_two_views(world5):
    world5.network.topology.partition({"s0", "s1"}, {"s2", "s3", "s4"})
    world5.settle()
    side_a = {world5.daemons[n].config for n in ("s0", "s1")}
    side_b = {world5.daemons[n].config for n in ("s2", "s3", "s4")}
    assert len(side_a) == 1 and len(side_b) == 1
    assert set(side_a.pop().members) == {"s0", "s1"}
    assert set(side_b.pop().members) == {"s2", "s3", "s4"}
    world5.check_spec()


def test_merge_after_partition_heals(world5):
    world5.network.topology.partition({"s0", "s1"}, {"s2", "s3", "s4"})
    world5.settle()
    world5.network.topology.heal_partition()
    world5.settle()
    world5.assert_single_view(expected_members={f"s{i}" for i in range(5)})
    world5.check_spec()


def test_view_ids_strictly_increase_at_each_daemon(world5):
    world5.daemons["s4"].crash()
    world5.settle()
    world5.daemons["s4"].recover()
    world5.settle()
    world5.monitor.check_monotonic_views()


def test_total_crash_then_full_recovery(world3):
    for d in world3.daemons.values():
        d.crash()
    world3.settle()
    for d in world3.daemons.values():
        d.recover()
    world3.settle()
    world3.assert_single_view(expected_members={"s0", "s1", "s2"})
    world3.check_spec()


def test_cascading_crashes(world5):
    world5.daemons["s1"].crash()
    world5.run(0.2)
    world5.daemons["s3"].crash()
    world5.run(0.2)
    world5.daemons["s0"].crash()
    world5.settle()
    world5.assert_single_view(expected_members={"s2", "s4"})
    world5.check_spec()


def test_singleton_survivor(world3):
    world3.daemons["s0"].crash()
    world3.daemons["s1"].crash()
    world3.settle()
    config = world3.daemons["s2"].config
    assert set(config.members) == {"s2"}
    world3.check_spec()


def test_asymmetric_link_resolves_to_disjoint_views(world3):
    """With s0<->s1 fully cut but both talking to s2, membership still
    converges (to views reflecting who can reach whom) without deadlock."""
    world3.network.topology.cut_link("s0", "s1")
    world3.run(10.0)
    # s2 hears both, but any view containing both s0 and s1 cannot be
    # stably maintained; the protocol must keep all daemons live and in
    # *some* view containing themselves.
    for node, daemon in world3.daemons.items():
        assert daemon.is_up()
        assert node in daemon.config
    world3.monitor.check_monotonic_views()
    world3.monitor.check_self_inclusion()


def test_repartition_while_forming():
    """Connectivity flaps faster than formation completes; the protocol
    must neither crash nor violate safety, and must converge once stable."""
    world = GcsWorld(4)
    world.run(1.0)
    for i in range(6):
        if i % 2 == 0:
            world.network.topology.partition({"s0", "s1"}, {"s2", "s3"})
        else:
            world.network.topology.heal_partition()
        world.run(0.31)
    world.network.topology.heal_partition()
    world.settle()
    world.run(3.0)
    world.assert_single_view(expected_members={"s0", "s1", "s2", "s3"})
    world.check_spec()
