"""Totally ordered multicast and group layer tests."""

from tests.gcs.conftest import GcsWorld


def joined(world, group, *nodes):
    for node in nodes:
        world.daemons[node].join(group)
    world.run(1.0)


def test_join_creates_group_view(world3):
    joined(world3, "g", "s0", "s1")
    view = world3.daemons["s0"].group_view("g")
    assert set(view.members) == {"s0", "s1"}
    assert world3.apps["s0"].last_view("g") is not None
    assert set(world3.apps["s0"].last_view("g").members) == {"s0", "s1"}


def test_group_views_consistent_across_members(world3):
    joined(world3, "g", "s0", "s1", "s2")
    views = {
        tuple(world3.daemons[n].group_view("g").members) for n in ("s0", "s1", "s2")
    }
    assert views == {("s0", "s1", "s2")}


def test_members_receive_multicast(world3):
    joined(world3, "g", "s0", "s1")
    world3.daemons["s0"].mcast("g", "hello")
    world3.run(1.0)
    assert world3.apps["s0"].payloads("g") == ["hello"]
    assert world3.apps["s1"].payloads("g") == ["hello"]
    assert world3.apps["s2"].payloads("g") == []  # not a member


def test_open_group_send_from_non_member(world3):
    joined(world3, "g", "s1", "s2")
    world3.daemons["s0"].mcast("g", "from-outside")
    world3.run(1.0)
    assert world3.apps["s1"].payloads("g") == ["from-outside"]
    assert world3.apps["s2"].payloads("g") == ["from-outside"]
    assert world3.apps["s0"].payloads("g") == []


def test_total_order_across_senders(world3):
    joined(world3, "g", "s0", "s1", "s2")
    for i in range(10):
        world3.daemons["s0"].mcast("g", f"a{i}")
        world3.daemons["s1"].mcast("g", f"b{i}")
        world3.daemons["s2"].mcast("g", f"c{i}")
    world3.run(2.0)
    sequences = [world3.apps[n].payloads("g") for n in ("s0", "s1", "s2")]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == 30
    world3.check_spec()


def test_per_sender_fifo_order(world3):
    joined(world3, "g", "s0", "s1")
    for i in range(20):
        world3.daemons["s1"].mcast("g", i)
    world3.run(2.0)
    received = world3.apps["s0"].payloads("g")
    assert received == list(range(20))


def test_total_order_across_groups_single_sequence(world3):
    """One total order spans all groups (gives cross-group causality)."""
    joined(world3, "g1", "s0", "s1")
    joined(world3, "g2", "s0", "s1")
    for i in range(5):
        world3.daemons["s0"].mcast("g1", ("g1", i))
        world3.daemons["s0"].mcast("g2", ("g2", i))
    world3.run(2.0)
    inter0 = world3.apps["s0"].payloads()
    inter1 = world3.apps["s1"].payloads()
    assert inter0 == inter1
    world3.check_spec()


def test_leave_stops_delivery(world3):
    joined(world3, "g", "s0", "s1")
    world3.daemons["s1"].leave("g")
    world3.run(1.0)
    world3.daemons["s0"].mcast("g", "after-leave")
    world3.run(1.0)
    assert "after-leave" in world3.apps["s0"].payloads("g")
    assert "after-leave" not in world3.apps["s1"].payloads("g")
    view = world3.daemons["s0"].group_view("g")
    assert set(view.members) == {"s0"}


def test_messages_before_crash_delivered_to_survivors(world3):
    joined(world3, "g", "s0", "s1", "s2")
    world3.daemons["s1"].mcast("g", "pre-crash")
    world3.run(1.0)
    world3.daemons["s1"].crash()
    world3.settle()
    assert "pre-crash" in world3.apps["s0"].payloads("g")
    assert "pre-crash" in world3.apps["s2"].payloads("g")
    world3.check_spec()


def test_crash_triggers_new_group_view_without_failed_member(world3):
    joined(world3, "g", "s0", "s1", "s2")
    world3.daemons["s2"].crash()
    world3.settle()
    view = world3.apps["s0"].last_view("g")
    assert set(view.members) == {"s0", "s1"}


def test_multicast_delivered_exactly_once_despite_view_change(world3):
    """A burst of messages racing a crash is delivered exactly once to the
    surviving members that move together (virtual synchrony + dedup)."""
    joined(world3, "g", "s0", "s1", "s2")
    for i in range(20):
        world3.daemons["s1"].mcast("g", i)
    world3.daemons["s2"].crash()
    world3.settle()
    received = world3.apps["s0"].payloads("g")
    assert received == sorted(set(received)), "duplicates or reordering"
    world3.check_spec()


def test_virtual_synchrony_on_sequencer_crash(world3):
    """Messages in flight when the sequencer dies are either delivered to
    all survivors moving together or to none (and unsequenced ones are
    re-sequenced by the flush)."""
    joined(world3, "g", "s0", "s1", "s2")
    for i in range(10):
        world3.daemons["s1"].mcast("g", f"m{i}")
    world3.daemons["s0"].crash()  # s0 is the sequencer
    world3.settle()
    a = world3.apps["s1"].payloads("g")
    b = world3.apps["s2"].payloads("g")
    # survivors must agree entirely (they transitioned together)
    assert a == b
    # nothing may be lost: s1 survived and resubmits unsequenced requests
    assert set(f"m{i}" for i in range(10)) <= set(a)
    world3.check_spec()


def test_group_survives_partition_and_merge(world5):
    joined(world5, "g", "s0", "s1", "s3")
    world5.network.topology.partition({"s0", "s1"}, {"s2", "s3", "s4"})
    world5.settle()
    va = world5.daemons["s0"].group_view("g")
    vb = world5.daemons["s3"].group_view("g")
    assert set(va.members) == {"s0", "s1"}
    assert set(vb.members) == {"s3"}
    # each side can keep multicasting within its component
    world5.daemons["s0"].mcast("g", "side-a")
    world5.daemons["s3"].mcast("g", "side-b")
    world5.run(1.0)
    assert "side-a" in world5.apps["s1"].payloads("g")
    assert "side-b" in world5.apps["s3"].payloads("g")
    world5.network.topology.heal_partition()
    world5.settle()
    vm = world5.daemons["s4"].group_view("g")
    assert set(vm.members) == {"s0", "s1", "s3"}
    world5.check_spec()


def test_rejoin_after_recovery_requires_explicit_join(world3):
    joined(world3, "g", "s0", "s1")
    world3.daemons["s1"].crash()
    world3.settle()
    world3.daemons["s1"].recover()
    world3.settle()
    # memberships are volatile: after recovery s1 is not in g
    view = world3.daemons["s0"].group_view("g")
    assert set(view.members) == {"s0"}
    world3.daemons["s1"].join("g")
    world3.run(1.0)
    view = world3.daemons["s0"].group_view("g")
    assert set(view.members) == {"s0", "s1"}


def test_ptp_bypasses_total_order(world3):
    world3.daemons["s0"].send_ptp("s1", {"direct": True})
    world3.run(0.5)
    assert world3.apps["s1"].ptp == [("s0", {"direct": True})]
    assert world3.apps["s1"].messages == []
