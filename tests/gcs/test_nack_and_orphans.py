"""Unit tests for NACK retransmission plumbing and orphan-at-new-view
delivery — the machinery added for lossy links (DESIGN.md §6)."""

from repro.gcs.messages import NackSeqs, OrderRequest, RequestId, Sequenced
from repro.gcs.ordering import HoldbackBuffer
from repro.gcs.view import ViewId
from tests.gcs.conftest import GcsWorld

VID = ViewId(3, "s0")


def req(counter, payload=None):
    return OrderRequest(
        request_id=RequestId("x", 0, counter), group="g",
        payload=payload if payload is not None else counter,
    )


def seqd(seq, counter):
    return Sequenced(config_view_id=VID, seq=seq, request=req(counter))


class TestMissingSeqs:
    def test_no_gap(self):
        buf = HoldbackBuffer()
        for seq in range(3):
            buf.insert(seqd(seq, seq))
        buf.take_ready()
        assert buf.missing_seqs() == []

    def test_single_gap(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(0, 0))
        buf.insert(seqd(2, 2))
        buf.take_ready()
        assert buf.missing_seqs() == [1]

    def test_multiple_gaps_limited(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(10, 10))
        assert buf.missing_seqs(limit=4) == [0, 1, 2, 3]

    def test_empty(self):
        assert HoldbackBuffer().missing_seqs() == []

    def test_get(self):
        buf = HoldbackBuffer()
        message = seqd(5, 5)
        buf.insert(message)
        assert buf.get(5) is message
        assert buf.get(4) is None


class TestNackHandling:
    def test_sequencer_retransmits_on_nack(self):
        world = GcsWorld(3)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        world.daemons["s1"].mcast("g", "hello")
        world.run(1.0)
        sequencer = world.daemons["s0"]
        assert sequencer.config.sequencer == "s0"
        # simulate s2 reporting a gap it actually has no gap for: the
        # sequencer resends whatever it holds for those seqs
        held = sorted(sequencer.holdback.all_received())
        before = world.network.sent_count("s0", "gcs.sequenced")
        sequencer._on_nack_seqs(
            NackSeqs(
                config_view_id=sequencer.config.view_id,
                seqs=tuple(held[:2]),
            ),
            sender="s2",
        )
        world.run(0.5)
        after = world.network.sent_count("s0", "gcs.sequenced")
        assert after == before + min(2, len(held))

    def test_non_sequencer_ignores_nack(self):
        world = GcsWorld(2)
        world.settle()
        follower = world.daemons["s1"]
        before = world.network.sent_count("s1", "gcs.sequenced")
        follower._on_nack_seqs(
            NackSeqs(config_view_id=follower.config.view_id, seqs=(0,)),
            sender="s0",
        )
        world.run(0.5)
        assert world.network.sent_count("s1", "gcs.sequenced") == before

    def test_stale_view_nack_ignored(self):
        world = GcsWorld(2)
        world.settle()
        sequencer = world.daemons["s0"]
        before = world.network.sent_count("s0", "gcs.sequenced")
        sequencer._on_nack_seqs(
            NackSeqs(config_view_id=ViewId(999, "zz"), seqs=(0,)), sender="s1"
        )
        world.run(0.5)
        assert world.network.sent_count("s0", "gcs.sequenced") == before


class TestOrphanDeliveryAtNewView:
    def test_unsequenced_requests_survive_sequencer_crash(self):
        """Messages whose sequencing died with the sequencer are delivered
        at the head of the next configuration — with fresh sequence
        numbers, never reusing the old configuration's."""
        world = GcsWorld(3)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        # cut the sequencer off right before it can sequence, so the
        # requests stay unsequenced at their origins
        world.network.topology.set_node_down("s0", True)
        world.daemons["s1"].mcast("g", "orphan-1")
        world.daemons["s2"].mcast("g", "orphan-2")
        world.run(0.1)
        world.daemons["s0"].crash()
        world.network.topology.set_node_down("s0", False)
        world.settle()
        for node in ("s1", "s2"):
            payloads = world.apps[node].payloads("g")
            assert "orphan-1" in payloads and "orphan-2" in payloads, node
        world.check_spec()
