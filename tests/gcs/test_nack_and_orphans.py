"""Unit tests for NACK retransmission plumbing and orphan-at-new-view
delivery — the machinery added for lossy links (DESIGN.md §6)."""

import pytest

from repro.gcs.messages import NackSeqs, OrderRequest, RequestId, Sequenced
from repro.gcs.ordering import HoldbackBuffer
from repro.gcs.settings import GcsSettings
from repro.gcs.view import ViewId
from tests.gcs.conftest import GcsWorld

VID = ViewId(3, "s0")


def req(counter, payload=None):
    return OrderRequest(
        request_id=RequestId("x", 0, counter), group="g",
        payload=payload if payload is not None else counter,
    )


def seqd(seq, counter):
    return Sequenced(config_view_id=VID, seq=seq, request=req(counter))


class TestMissingSeqs:
    def test_no_gap(self):
        buf = HoldbackBuffer()
        for seq in range(3):
            buf.insert(seqd(seq, seq))
        buf.take_ready()
        assert buf.missing_seqs() == []

    def test_single_gap(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(0, 0))
        buf.insert(seqd(2, 2))
        buf.take_ready()
        assert buf.missing_seqs() == [1]

    def test_multiple_gaps_limited(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(10, 10))
        assert buf.missing_seqs(limit=4) == [0, 1, 2, 3]

    def test_empty(self):
        assert HoldbackBuffer().missing_seqs() == []

    def test_get(self):
        buf = HoldbackBuffer()
        message = seqd(5, 5)
        buf.insert(message)
        assert buf.get(5) is message
        assert buf.get(4) is None


class TestNackHandling:
    @pytest.mark.parametrize("batching", [True, False])
    def test_sequencer_retransmits_on_nack(self, batching):
        settings = GcsSettings() if batching else GcsSettings(batch_window=0.0)
        world = GcsWorld(3, settings=settings)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        world.daemons["s1"].mcast("g", "hello")
        world.run(1.0)
        sequencer = world.daemons["s0"]
        assert sequencer.config.sequencer == "s0"
        # simulate s2 reporting a gap it actually has no gap for: the
        # sequencer resends whatever it holds for those seqs — as one
        # batch when batching is on, as individual messages when off
        held = sorted(sequencer.holdback.all_received())
        kind = "gcs.sequenced_batch" if batching else "gcs.sequenced"
        before = world.network.sent_count("s0", kind)
        sequencer._on_nack_seqs(
            NackSeqs(
                config_view_id=sequencer.config.view_id,
                seqs=tuple(held[:2]),
            ),
            sender="s2",
        )
        world.run(0.5)
        after = world.network.sent_count("s0", kind)
        expected = 1 if batching else min(2, len(held))
        assert after == before + expected

    def test_non_sequencer_ignores_nack(self):
        world = GcsWorld(2)
        world.settle()
        follower = world.daemons["s1"]
        before = world.network.sent_count("s1", "gcs.sequenced")
        follower._on_nack_seqs(
            NackSeqs(config_view_id=follower.config.view_id, seqs=(0,)),
            sender="s0",
        )
        world.run(0.5)
        assert world.network.sent_count("s1", "gcs.sequenced") == before

    def test_stale_view_nack_ignored(self):
        world = GcsWorld(2)
        world.settle()
        sequencer = world.daemons["s0"]
        before = world.network.sent_count("s0", "gcs.sequenced")
        sequencer._on_nack_seqs(
            NackSeqs(config_view_id=ViewId(999, "zz"), seqs=(0,)), sender="s1"
        )
        world.run(0.5)
        assert world.network.sent_count("s0", "gcs.sequenced") == before


class TestOrphanDeliveryAtNewView:
    def test_unsequenced_requests_survive_sequencer_crash(self):
        """Messages whose sequencing died with the sequencer are delivered
        at the head of the next configuration — with fresh sequence
        numbers, never reusing the old configuration's."""
        world = GcsWorld(3)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        # cut the sequencer off right before it can sequence, so the
        # requests stay unsequenced at their origins
        world.network.topology.set_node_down("s0", True)
        world.daemons["s1"].mcast("g", "orphan-1")
        world.daemons["s2"].mcast("g", "orphan-2")
        world.run(0.1)
        world.daemons["s0"].crash()
        world.network.topology.set_node_down("s0", False)
        world.settle()
        for node in ("s1", "s2"):
            payloads = world.apps[node].payloads("g")
            assert "orphan-1" in payloads and "orphan-2" in payloads, node
        world.check_spec()


class TestUnfillableNackResync:
    def test_pruned_below_tracks_prune_floor(self):
        buf = HoldbackBuffer()
        for seq in range(40):
            buf.insert(seqd(seq, seq))
        buf.take_ready()
        assert buf.pruned_below == 0
        buf.prune(keep=10)
        assert buf.pruned_below == 30
        assert buf.get(29) is None
        assert buf.get(30) is not None
        # a smaller keep later never moves the floor backwards
        buf.prune(keep=100)
        assert buf.pruned_below == 30

    def test_peer_lagging_beyond_keep_reconverges(self):
        """Regression for the NACK-stall: a peer whose holdback gap was
        pruned from the sequencer's retransmission buffer used to stall
        forever (its NACKs silently ignored, heartbeats still flowing so
        no view change ever repaired it).  Now the sequencer answers the
        unfillable NACK with a resync: the peer falls back to a singleton
        view and re-merges, after which new messages reach it again."""
        settings = GcsSettings(holdback_keep=16)
        world = GcsWorld(3, settings=settings)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        lagger = world.daemons["s2"]
        # Simulate a long unidirectional outage of the ordering stream
        # only: s2 drops every sequenced message at the handler while
        # heartbeats (and everything else) keep flowing.
        lagger._on_sequenced = lambda m: None
        lagger._on_sequenced_batch = lambda b: None
        for i in range(100):
            world.daemons["s0"].mcast("g", i)
            if i % 10 == 9:
                world.run(0.25)
        world.run(1.0)
        sequencer = world.daemons["s0"]
        assert sequencer.holdback.pruned_below > 0, "prune must have run"
        assert world.apps["s2"].payloads("g") == []
        # Outage ends.  s2 only notices its gap when fresh sequenced
        # traffic arrives, so send a trigger message; it lands in the
        # abandoned epoch (s2 resyncs past it), and the repair follows:
        # unfillable NACK -> ResyncRequired -> singleton -> re-merge.
        del lagger._on_sequenced
        del lagger._on_sequenced_batch
        world.daemons["s1"].mcast("g", "trigger")
        world.run(4.0)
        world.assert_single_view(expected_members=set(world.daemon_ids))
        # the repaired peer is live again in the total order
        world.daemons["s1"].mcast("g", "after-repair")
        world.run(2.0)
        assert "after-repair" in world.apps["s2"].payloads("g")
        # the gap messages are lost to s2 (it rejoined), but everyone who
        # moved through views *together* agrees — the spec must hold
        world.check_spec()
