"""Property-based tests: GCS safety under randomized schedules.

Hypothesis drives randomized interleavings of multicasts, crashes,
recoveries, partitions, and heals; after every schedule the spec monitor
checks total order, virtual synchrony, at-most-once delivery, view
monotonicity and self-inclusion.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gcs.ordering import DuplicateFilter, HoldbackBuffer, flush_union
from repro.gcs.messages import OrderRequest, RequestId, Sequenced
from repro.gcs.settings import GcsSettings
from repro.gcs.view import ViewId
from tests.gcs.conftest import GcsWorld

# The safety properties must be independent of the hot-path tuning: every
# end-to-end schedule runs once with sequencer batching + heartbeat
# piggybacking on (the defaults) and once with both off (the pre-batching
# wire format).
TUNING_MODES = {
    "batched": GcsSettings(),
    "unbatched": GcsSettings(batch_window=0.0, piggyback_liveness=False),
}


# ---------------------------------------------------------------------------
# randomized end-to-end schedules
# ---------------------------------------------------------------------------

N_DAEMONS = 4

action_strategy = st.one_of(
    st.tuples(
        st.just("mcast"),
        st.integers(min_value=0, max_value=N_DAEMONS - 1),
    ),
    st.tuples(
        st.just("crash"),
        st.integers(min_value=0, max_value=N_DAEMONS - 1),
    ),
    st.tuples(
        st.just("recover"),
        st.integers(min_value=0, max_value=N_DAEMONS - 1),
    ),
    st.tuples(
        st.just("partition"),
        st.integers(min_value=1, max_value=N_DAEMONS - 1),
    ),
    st.tuples(st.just("heal"), st.just(0)),
    st.tuples(
        st.just("wait"),
        st.integers(min_value=1, max_value=20),  # tenths of seconds
    ),
)


def run_schedule(actions, settings=None):
    world = GcsWorld(N_DAEMONS, settings=settings)
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.run(1.0)
    payload = 0
    for action, arg in actions:
        if action == "mcast":
            daemon = world.daemons[f"s{arg}"]
            if daemon.is_up():
                daemon.mcast("g", payload)
                payload += 1
        elif action == "crash":
            world.daemons[f"s{arg}"].crash()
        elif action == "recover":
            daemon = world.daemons[f"s{arg}"]
            if not daemon.is_up():
                daemon.recover()
                daemon.join("g")
        elif action == "partition":
            left = {f"s{i}" for i in range(arg)}
            right = {f"s{i}" for i in range(arg, N_DAEMONS)}
            world.network.topology.partition(left, right)
        elif action == "heal":
            world.network.topology.heal_partition()
        elif action == "wait":
            world.run(arg / 10.0)
        world.run(0.05)
    world.network.topology.heal_partition()
    for node in world.daemon_ids:
        if not world.daemons[node].is_up():
            world.daemons[node].recover()
    world.run(6.0)
    return world


@pytest.mark.parametrize("mode", sorted(TUNING_MODES))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(action_strategy, min_size=1, max_size=12))
def test_gcs_safety_under_random_schedules(mode, actions):
    world = run_schedule(actions, settings=TUNING_MODES[mode])
    world.check_spec()


@pytest.mark.parametrize("mode", sorted(TUNING_MODES))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(action_strategy, min_size=1, max_size=12))
def test_gcs_converges_after_stabilization(mode, actions):
    """After every schedule ends (faults healed, everyone recovered), all
    daemons agree on one configuration containing everyone — the paper's
    'precise views in times of stability'."""
    world = run_schedule(actions, settings=TUNING_MODES[mode])
    world.run(6.0)
    world.assert_single_view(expected_members=set(world.daemon_ids))


# ---------------------------------------------------------------------------
# component-level properties
# ---------------------------------------------------------------------------

VID = ViewId(1, "s0")


@given(st.lists(st.integers(min_value=0, max_value=200), max_size=80))
def test_holdback_delivers_contiguous_prefix(seqs):
    buf = HoldbackBuffer()
    for seq in seqs:
        request = OrderRequest(RequestId("a", 0, seq), "g", seq)
        buf.insert(Sequenced(VID, seq, request))
    delivered = buf.take_ready()
    expected = 0
    while expected in set(seqs):
        expected += 1
    assert [m.seq for m in delivered] == list(range(expected))


@given(
    st.lists(
        st.tuples(st.sampled_from("abc"), st.integers(min_value=0, max_value=30)),
        max_size=60,
    )
)
def test_duplicate_filter_never_delivers_twice(events):
    f = DuplicateFilter()
    delivered = []
    for origin, counter in events:
        rid = RequestId(origin, 0, counter)
        if not f.is_duplicate(rid):
            f.mark_delivered(rid)
            delivered.append((origin, counter))
    assert len(delivered) == len(set(delivered))


@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=40),
    st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=40),
    st.lists(st.integers(min_value=100, max_value=120), max_size=6),
)
def test_flush_union_suffix_property(seen_a, seen_b, orphan_counters):
    """For any two reports: the union tail contains every reported message
    exactly once, ordered by seq, inventing no sequence numbers; orphans
    are collected separately (they belong to the next configuration)."""
    from repro.gcs.ordering import collect_orphans

    def report(seqs):
        return {
            s: Sequenced(VID, s, OrderRequest(RequestId("x", 0, s), "g", s))
            for s in seqs
        }

    orphans_in = tuple(
        OrderRequest(RequestId("y", 0, c), "g", c) for c in sorted(set(orphan_counters))
    )
    tail = flush_union([report(seen_a), report(seen_b)])
    seqs = [m.seq for m in tail]
    reported = set(seen_a) | set(seen_b)
    assert seqs == sorted(reported)
    orphans_out = collect_orphans([tail], [orphans_in])
    assert [o.request_id for o in orphans_out] == [
        o.request_id for o in orphans_in
    ]


@pytest.mark.parametrize("crash_index", [0, 1, 2])
def test_vs_holds_for_every_crash_position(crash_index):
    """Deterministic variant: whichever member dies mid-burst, survivors
    that move together deliver identical sets."""
    world = GcsWorld(3)
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.run(1.0)
    for i in range(12):
        for node in world.daemon_ids:
            world.daemons[node].mcast("g", (node, i))
    world.daemons[f"s{crash_index}"].crash()
    world.settle()
    survivors = [n for n in world.daemon_ids if world.daemons[n].is_up()]
    received = [world.apps[n].payloads("g") for n in survivors]
    assert received[0] == received[1]
    world.check_spec()
