"""The spec monitor must catch violations, not just stay quiet on good
runs — these tests feed it corrupted histories."""

import pytest

from repro.gcs.messages import OrderRequest, RequestId
from repro.gcs.spec import SpecMonitor, SpecViolation
from repro.gcs.view import Configuration, ViewId


def req(origin, counter, payload=None):
    return OrderRequest(
        request_id=RequestId(origin, 0, counter),
        group="g",
        payload=payload if payload is not None else counter,
    )


def config(counter, *members):
    return Configuration.make(ViewId(counter, members[0]), members)


V1 = ViewId(1, "a")
V2 = ViewId(2, "a")


def test_clean_history_passes():
    monitor = SpecMonitor()
    for node in ("a", "b"):
        monitor.record_config_view(node, config(1, "a", "b"))
        monitor.record_delivery(node, V1, 0, req("a", 0))
        monitor.record_delivery(node, V1, 1, req("b", 0))
        monitor.record_config_view(node, config(2, "a", "b"))
    monitor.check_all()


def test_detects_missing_self():
    monitor = SpecMonitor()
    monitor.record_config_view("c", config(1, "a", "b"))
    with pytest.raises(SpecViolation):
        monitor.check_self_inclusion()


def test_detects_non_monotonic_views():
    monitor = SpecMonitor()
    monitor.record_config_view("a", config(5, "a"))
    monitor.record_config_view("a", config(3, "a"))
    with pytest.raises(SpecViolation):
        monitor.check_monotonic_views()


def test_detects_conflicting_seq_assignment():
    monitor = SpecMonitor()
    monitor.record_delivery("a", V1, 0, req("a", 0))
    monitor.record_delivery("b", V1, 0, req("b", 7))  # same seq, other req
    with pytest.raises(SpecViolation):
        monitor.check_total_order()


def test_detects_out_of_order_delivery():
    monitor = SpecMonitor()
    monitor.record_delivery("a", V1, 1, req("x", 1))
    monitor.record_delivery("a", V1, 0, req("x", 0))  # seq went backwards
    with pytest.raises(SpecViolation):
        monitor.check_total_order()


def test_holes_across_divergence_allowed():
    """A node may skip a seq forever when the only holders died (the
    survivors' common relative order is still consistent)."""
    monitor = SpecMonitor()
    monitor.record_delivery("a", V1, 0, req("x", 0))
    monitor.record_delivery("a", V1, 1, req("x", 1))
    monitor.record_delivery("b", V1, 0, req("x", 0))
    monitor.record_delivery("b", V1, 2, req("x", 2))  # hole at seq 1
    monitor.check_total_order()


def test_detects_virtual_synchrony_violation():
    monitor = SpecMonitor()
    for node in ("a", "b"):
        monitor.record_config_view(node, config(1, "a", "b"))
    monitor.record_delivery("a", V1, 0, req("x", 0))  # b never delivers it
    for node in ("a", "b"):
        monitor.record_config_view(node, config(2, "a", "b"))
    with pytest.raises(SpecViolation):
        monitor.check_virtual_synchrony()


def test_vs_allows_divergence_for_different_transitions():
    monitor = SpecMonitor()
    monitor.record_config_view("a", config(1, "a", "b"))
    monitor.record_config_view("b", config(1, "a", "b"))
    monitor.record_delivery("a", V1, 0, req("x", 0))
    # a moves to view 2, b moves to a *different* view 3: no constraint
    monitor.record_config_view("a", config(2, "a"))
    monitor.record_config_view("b", config(3, "b"))
    monitor.check_virtual_synchrony()


def test_detects_double_delivery():
    monitor = SpecMonitor()
    monitor.record_delivery("a", V1, 0, req("x", 0))
    monitor.record_delivery("a", V2, 0, req("x", 0))  # again, later view
    with pytest.raises(SpecViolation):
        monitor.check_at_most_once()


def test_causality_allows_gap_fill_but_not_redelivery():
    monitor = SpecMonitor()
    # out-of-order gap-fill: 1 then 0 — legal (late retransmission)
    monitor.record_delivery("a", V1, 0, req("x", 1))
    monitor.record_delivery("a", V1, 1, req("x", 0))
    monitor.check_causality()
    # re-delivery of the same counter — illegal
    monitor.record_delivery("a", V1, 2, req("x", 1))
    with pytest.raises(SpecViolation):
        monitor.check_causality()


def test_delivered_payloads_in_view_order():
    monitor = SpecMonitor()
    monitor.record_delivery("a", V2, 0, req("x", 2, payload="late"))
    monitor.record_delivery("a", V1, 0, req("x", 0, payload="early"))
    monitor.record_delivery("a", V1, 1, req("x", 1, payload="mid"))
    assert monitor.delivered_payloads("a") == ["early", "mid", "late"]


def test_settings_flags_reach_daemon():
    from repro.gcs.settings import GcsSettings
    from tests.gcs.conftest import GcsWorld

    world = GcsWorld(2, settings=GcsSettings(detect_divergence=False))
    world.settle()
    for daemon in world.daemons.values():
        assert daemon.config_divergence_detected() is False
