"""SWIM gossip membership (``membership_mode="gossip"``): formation,
crash detection, partition heal, the amnesia plant, and the detector's
dispatch/refutation machinery."""

import pytest

from tests.gcs.conftest import GcsWorld

from repro.gcs.messages import (
    Heartbeat,
    SwimAck,
    SwimDigest,
    SwimPing,
    SwimUpdate,
)
from repro.gcs.settings import GcsSettings
from repro.gcs.swim import SWIM_ALIVE, SWIM_DEAD, SWIM_SUSPECT, SwimDetector


def gossip_settings(**overrides) -> GcsSettings:
    return GcsSettings(membership_mode="gossip", **overrides)


# ---------------------------------------------------------------------------
# cluster-level behaviour (same scenarios the mesh suite pins)
# ---------------------------------------------------------------------------


def test_gossip_bootstrap_forms_single_view():
    world = GcsWorld(8, settings=gossip_settings())
    world.settle()
    world.assert_single_view(expected_members=world.daemon_ids)
    world.check_spec()


def test_gossip_detects_crash_and_evicts():
    world = GcsWorld(5, settings=gossip_settings())
    world.settle()
    world.daemons["s4"].crash()
    world.settle()
    world.assert_single_view(expected_members=["s0", "s1", "s2", "s3"])
    detector = world.daemons["s0"].swim
    assert detector.evictions >= 1
    world.check_spec()


def test_gossip_recovered_daemon_remerges():
    world = GcsWorld(5, settings=gossip_settings())
    world.settle()
    world.daemons["s2"].crash()
    world.settle()
    world.daemons["s2"].recover()
    world.settle()
    world.assert_single_view(expected_members=world.daemon_ids)
    world.check_spec()


def test_gossip_partition_forms_two_views_then_remerges():
    world = GcsWorld(5, settings=gossip_settings())
    world.settle()
    world.network.topology.partition({"s0", "s1"}, {"s2", "s3", "s4"})
    world.settle()
    assert set(world.daemons["s0"].config.members) == {"s0", "s1"}
    assert set(world.daemons["s2"].config.members) == {"s2", "s3", "s4"}
    world.network.topology.heal_partition()
    world.run(6.0)
    world.assert_single_view(expected_members=world.daemon_ids)
    world.check_spec()


def test_gossip_amnesia_plant_prevents_remerge():
    """With readmit_evicted off (the partition-amnesia chaos plant) the
    healed components must keep distrusting each other in gossip mode
    exactly as in mesh mode — swim liveness evidence from evicted members
    is dropped at the daemon's dispatch gate."""
    world = GcsWorld(5, settings=gossip_settings(readmit_evicted=False))
    world.settle()
    world.network.topology.partition({"s0", "s1"}, {"s2", "s3", "s4"})
    world.settle()
    world.network.topology.heal_partition()
    world.run(6.0)
    views = {d.config.view_id for d in world.daemons.values()}
    assert len(views) == 2, "amnesia plant should keep the components split"


def test_gossip_no_false_suspicions_on_clean_network():
    world = GcsWorld(8, settings=gossip_settings())
    world.settle()
    world.run(5.0)
    world.assert_single_view(expected_members=world.daemon_ids)
    for daemon in world.daemons.values():
        assert daemon.swim.evictions == 0
    world.check_spec()


def test_gossip_multicast_delivery_works():
    world = GcsWorld(4, settings=gossip_settings())
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.settle()
    world.daemons["s0"].mcast("g", "hello")
    world.run(1.0)
    for node in world.daemon_ids:
        assert "hello" in world.apps[node].payloads("g")
    world.check_spec()


def test_unknown_membership_mode_rejected():
    with pytest.raises(ValueError, match="membership_mode"):
        GcsWorld(3, settings=GcsSettings(membership_mode="carrier-pigeon"))


# ---------------------------------------------------------------------------
# detector unit level
# ---------------------------------------------------------------------------


class SwimHarness:
    """A SwimDetector wired to fakes: manual clock, recorded sends and
    timers, fixed local state."""

    def __init__(self, me="n0", world=("n0", "n1", "n2", "n3"), **overrides):
        self.now = 0.0
        self.sent = []  # (dest, payload, kind)
        self.changes = 0
        self.timers = []  # (fire_at, callback)
        self.incarnation = 0
        self.detector = SwimDetector(
            me,
            list(world),
            GcsSettings(membership_mode="gossip", **overrides),
            lambda: self.now,
            self._on_change,
            lambda dest, payload, kind, size: self.sent.append(
                (dest, payload, kind)
            ),
            lambda: (self.incarnation, 0, None),
            lambda delay, cb: self.timers.append((self.now + delay, cb)),
        )

    def _on_change(self):
        self.changes += 1

    def advance(self, dt):
        """Move the clock and fire due one-shot timers in order."""
        self.now += dt
        due = sorted(
            (t for t in self.timers if t[0] <= self.now), key=lambda t: t[0]
        )
        self.timers = [t for t in self.timers if t[0] > self.now]
        for _at, callback in due:
            callback()


def ping_from(sender, updates=(), incarnation=0, seq=0):
    return SwimPing(sender, incarnation, 0, None, seq, None, tuple(updates))


def test_direct_ping_is_acked():
    h = SwimHarness()
    assert h.detector.on_message(ping_from("n1", seq=7), "n1")
    dest, payload, kind = h.sent[-1]
    assert dest == "n1" and kind == "swim.ack"
    assert isinstance(payload, SwimAck) and payload.probe_seq == 7


def test_non_swim_payload_not_owned():
    h = SwimHarness()
    heartbeat = Heartbeat("n1", 0, 0)
    assert not h.detector.owns(heartbeat)
    assert not h.detector.on_message(heartbeat, "n1")
    assert h.detector.owns(ping_from("n1"))


def test_unacked_probe_escalates_to_indirect_then_suspicion():
    h = SwimHarness()
    # introduce three peers so there are helpers to fan out to
    for peer in ("n1", "n2", "n3"):
        h.detector.on_message(ping_from(peer), peer)
    h.sent.clear()
    h.detector.on_probe_tick()
    assert [kind for _d, _p, kind in h.sent] == ["swim.ping"]
    target = h.sent[0][0]
    h.sent.clear()
    # no ack before the probe timeout -> ping-req fan-out to helpers
    h.advance(h.detector.settings.probe_timeout + 0.001)
    req_kinds = [kind for _d, _p, kind in h.sent]
    assert req_kinds.count("swim.ping_req") == min(
        h.detector.settings.swim_fanout, 2
    )
    assert all(p.target == target for _d, p, k in h.sent if k == "swim.ping_req")
    # still no ack by round end -> the target becomes suspected, not dead
    h.advance(h.detector.settings.probe_interval)
    assert h.detector.suspicions_started == 1
    assert target in h.detector.alive_peers()  # suspicion is not eviction
    # unrefuted suspicion expires into eviction
    h.now += 10.0
    h.detector.check()
    assert target not in h.detector.alive_peers()
    assert h.detector.evictions == 1


def test_ack_in_time_prevents_suspicion():
    h = SwimHarness()
    for peer in ("n1", "n2", "n3"):
        h.detector.on_message(ping_from(peer), peer)
    h.sent.clear()
    h.detector.on_probe_tick()
    target, ping, _ = h.sent[0]
    h.detector.on_message(
        SwimAck(target, 0, 0, None, ping.probe_seq, None, ()), target
    )
    h.advance(1.0)
    h.now += 10.0
    h.detector.check()
    assert h.detector.suspicions_started == 0
    assert target in h.detector.alive_peers()


def test_indirect_ack_relayed_through_helper():
    """Helper receives a ping-req, pings the target with origin set; the
    target acks the helper; the helper relays the ack to the prober."""
    h = SwimHarness(me="n1")  # n1 is the helper
    from repro.gcs.messages import SwimPingReq

    h.detector.on_message(SwimPingReq("n0", 0, 0, None, "n2", 42, ()), "n0")
    relayed_pings = [p for _d, p, k in h.sent if k == "swim.ping"]
    assert relayed_pings and relayed_pings[-1].origin == "n0"
    h.sent.clear()
    # target's ack (origin echoed) arrives at the helper -> forwarded
    ack = SwimAck("n2", 0, 0, None, 42, "n0", ())
    h.detector.on_message(ack, "n2")
    assert ("n0", ack, "swim.ack") in h.sent


def test_gossiped_suspicion_about_self_is_refuted_once():
    h = SwimHarness()
    suspicion = SwimUpdate("n0", SWIM_SUSPECT, 0, 0)
    h.detector.on_message(ping_from("n1", updates=[suspicion]), "n1")
    assert h.detector.refutations_sent == 1
    # the refutation rides the next outgoing message as alive(epoch=1)
    h.sent.clear()
    h.detector.on_message(ping_from("n1", seq=1), "n1")
    ack = h.sent[-1][1]
    mine = [u for u in ack.updates if u.subject == "n0"]
    assert mine == [SwimUpdate("n0", SWIM_ALIVE, 0, 1)]
    # the SAME superseded suspicion again must not bump the epoch twice
    h.detector.on_message(ping_from("n1", updates=[suspicion], seq=2), "n1")
    assert h.detector.refutations_sent == 1


def test_gossiped_death_of_self_is_refuted():
    h = SwimHarness()
    death = SwimUpdate("n0", SWIM_DEAD, 0, 0)
    h.detector.on_message(ping_from("n1", updates=[death]), "n1")
    assert h.detector.refutations_sent == 1


def test_stale_lower_incarnation_does_not_resurrect():
    """A dead verdict at incarnation 2 must survive gossip and direct
    evidence from incarnation 1 (stale pre-restart traffic)."""
    h = SwimHarness()
    h.detector.on_message(ping_from("n1", incarnation=2), "n1")
    h.detector.on_message(
        ping_from("n2", updates=[SwimUpdate("n1", SWIM_DEAD, 2, 0)]), "n2"
    )
    assert "n1" not in h.detector.alive_peers()
    h.detector.on_message(
        ping_from("n2", updates=[SwimUpdate("n1", SWIM_ALIVE, 1, 9)]), "n2"
    )
    assert "n1" not in h.detector.alive_peers()
    assert h.detector.incarnation_of("n1") == 2
    # ...but the peer speaking for itself at incarnation 2 revives it
    h.detector.on_message(ping_from("n1", incarnation=2, seq=5), "n1")
    assert "n1" in h.detector.alive_peers()


def test_restart_bumps_incarnation_and_fires_change():
    h = SwimHarness()
    h.detector.on_message(ping_from("n1", incarnation=0), "n1")
    before = h.changes
    h.detector.on_message(ping_from("n1", incarnation=1), "n1")
    assert h.detector.incarnation_of("n1") == 1
    assert h.changes == before + 1


def test_digest_merges_and_replies_when_requested():
    h = SwimHarness()
    digest = SwimDigest(
        "n1",
        0,
        0,
        None,
        (SwimUpdate("n2", SWIM_ALIVE, 0, 0),),
        reply_requested=True,
    )
    h.detector.on_message(digest, "n1")
    assert {"n1", "n2"} <= set(h.detector.alive_peers())
    replies = [p for d, p, k in h.sent if k == "swim.digest" and d == "n1"]
    assert len(replies) == 1 and not replies[0].reply_requested


def test_updates_outside_world_ignored():
    h = SwimHarness()
    h.detector.on_message(
        ping_from("n1", updates=[SwimUpdate("intruder", SWIM_ALIVE, 0, 0)]),
        "n1",
    )
    assert "intruder" not in h.detector.alive_peers()


def test_forget_is_local_only_and_revivable():
    """forget() (a protocol-reply timeout hint) must not be exported in
    digests as a dead verdict — that would let one slow sync reply
    propagate a bogus eviction cluster-wide — and alive gossip at the
    peer's current point must revive it."""
    h = SwimHarness()
    h.detector.on_message(ping_from("n1"), "n1")
    h.detector.forget("n1")
    assert "n1" not in h.detector.alive_peers()
    assert h.detector.evictions == 0
    # the forgotten peer never appears in our digest
    h.sent.clear()
    h.detector.on_message(
        SwimDigest("n2", 0, 0, None, (), reply_requested=True), "n2"
    )
    reply = [p for _d, p, k in h.sent if k == "swim.digest"][-1]
    assert all(u.subject != "n1" for u in reply.entries)
    # third-party alive gossip at the SAME point revives the hint (a real
    # dead verdict would need strictly newer evidence)
    h.detector.on_message(
        ping_from("n2", updates=[SwimUpdate("n1", SWIM_ALIVE, 0, 0)], seq=3),
        "n2",
    )
    assert "n1" in h.detector.alive_peers()


def test_gossip_budget_retires_updates():
    h = SwimHarness(gossip_max_updates=8)
    h.detector.on_message(
        ping_from("n1", updates=[SwimUpdate("n2", SWIM_SUSPECT, 0, 0)]), "n1"
    )
    carried = 0
    for seq in range(2, 40):
        h.sent.clear()
        h.detector.on_message(ping_from("n1", seq=seq), "n1")
        ack = h.sent[-1][1]
        if any(u.subject == "n2" for u in ack.updates):
            carried += 1
    budget = h.detector._gossip_budget()
    assert 0 < carried <= budget
