"""Unit tests for GCS building blocks: views, ordering, groups, FD, clocks."""

import pytest

from repro.gcs.causal import VectorClock
from repro.gcs.failure_detector import FailureDetector
from repro.gcs.groups import GroupMap
from repro.gcs.messages import Heartbeat, OrderRequest, RequestId, Sequenced
from repro.gcs.ordering import (
    DuplicateFilter,
    HoldbackBuffer,
    PendingRequests,
    flush_union,
)
from repro.gcs.view import Configuration, GroupView, ViewId


def req(origin, counter, group="g", payload=None, incarnation=0):
    return OrderRequest(
        request_id=RequestId(origin, incarnation, counter),
        group=group,
        payload=payload if payload is not None else counter,
    )


def seqd(view_id, seq, request):
    return Sequenced(config_view_id=view_id, seq=seq, request=request)


VID = ViewId(3, "s0")


class TestViewId:
    def test_ordering_by_counter_then_coordinator(self):
        assert ViewId(1, "b") < ViewId(2, "a")
        assert ViewId(2, "a") < ViewId(2, "b")
        assert not ViewId(2, "b") < ViewId(2, "b")

    def test_equality_and_hash(self):
        assert ViewId(1, "a") == ViewId(1, "a")
        assert hash(ViewId(1, "a")) == hash(ViewId(1, "a"))


class TestConfiguration:
    def test_members_sorted(self):
        config = Configuration.make(VID, ["s2", "s0", "s1"])
        assert config.members == ("s0", "s1", "s2")

    def test_sequencer_is_min_member(self):
        config = Configuration.make(VID, ["s2", "s1"])
        assert config.sequencer == "s1"

    def test_contains_and_len(self):
        config = Configuration.make(VID, ["s0", "s1"])
        assert "s0" in config and "s9" not in config
        assert len(config) == 2


class TestGroupView:
    def test_view_key_orders_by_config_then_change(self):
        v1 = GroupView.make("g", ViewId(1, "a"), 5, ["s0"])
        v2 = GroupView.make("g", ViewId(2, "a"), 0, ["s0"])
        assert v1.view_key < v2.view_key


class TestHoldbackBuffer:
    def test_in_order_delivery(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(VID, 0, req("a", 0)))
        buf.insert(seqd(VID, 1, req("a", 1)))
        ready = buf.take_ready()
        assert [m.seq for m in ready] == [0, 1]
        assert buf.delivered_count() == 2

    def test_gap_blocks_delivery(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(VID, 1, req("a", 1)))
        assert buf.take_ready() == []
        buf.insert(seqd(VID, 0, req("a", 0)))
        assert [m.seq for m in buf.take_ready()] == [0, 1]

    def test_duplicates_ignored(self):
        buf = HoldbackBuffer()
        m = seqd(VID, 0, req("a", 0))
        buf.insert(m)
        buf.insert(m)
        assert len(buf.take_ready()) == 1

    def test_all_received_includes_held_back(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(VID, 0, req("a", 0)))
        buf.insert(seqd(VID, 5, req("a", 5)))
        buf.take_ready()
        assert set(buf.all_received()) == {0, 5}

    def test_prune_keeps_recent(self):
        buf = HoldbackBuffer()
        for i in range(100):
            buf.insert(seqd(VID, i, req("a", i)))
        buf.take_ready()
        buf.prune(keep=10)
        assert set(buf.all_received()) == set(range(90, 100))

    def test_prune_never_drops_undelivered(self):
        buf = HoldbackBuffer()
        buf.insert(seqd(VID, 1, req("a", 1)))  # held back (gap at 0)
        buf.prune(keep=0)
        assert 1 in buf.all_received()


class TestDuplicateFilter:
    def test_basic_dedup(self):
        f = DuplicateFilter()
        rid = RequestId("a", 0, 3)
        assert not f.is_duplicate(rid)
        f.mark_delivered(rid)
        assert f.is_duplicate(rid)
        assert not f.is_duplicate(RequestId("a", 0, 4))

    def test_gap_fill_not_a_duplicate(self):
        """A late retransmission (out-of-order delivery) must be accepted:
        marking 3 does NOT brand the undelivered 2 a duplicate."""
        f = DuplicateFilter()
        f.mark_delivered(RequestId("a", 0, 3))
        assert not f.is_duplicate(RequestId("a", 0, 2))
        f.mark_delivered(RequestId("a", 0, 2))
        assert f.is_duplicate(RequestId("a", 0, 2))

    def test_contiguous_floor_collapses(self):
        f = DuplicateFilter()
        for counter in (0, 2, 1):
            f.mark_delivered(RequestId("a", 0, counter))
        assert f._floor[("a", 0)] == 2
        assert ("a", 0) not in f._above

    def test_incarnations_are_independent(self):
        f = DuplicateFilter()
        f.mark_delivered(RequestId("a", 0, 9))
        assert not f.is_duplicate(RequestId("a", 1, 0))

    def test_merge_unions_knowledge(self):
        f = DuplicateFilter()
        f.mark_delivered(RequestId("a", 0, 0))
        f.merge({("a", 0): (1, (3,)), ("b", 0): (0, ())})
        assert f.is_duplicate(RequestId("a", 0, 1))
        assert f.is_duplicate(RequestId("a", 0, 3))
        assert not f.is_duplicate(RequestId("a", 0, 2))  # the gap stays open
        assert f.is_duplicate(RequestId("b", 0, 0))
        assert not f.is_duplicate(RequestId("b", 0, 1))

    def test_merge_snapshots(self):
        merged = DuplicateFilter.merge_snapshots(
            [{("a", 0): (0, (2,))}, {("a", 0): (1, ()), ("b", 0): (0, ())}]
        )
        assert merged == {("a", 0): (2, ()), ("b", 0): (0, ())}

    def test_sparse_cap_abandons_oldest_gap(self):
        f = DuplicateFilter()
        for counter in range(1, DuplicateFilter.MAX_SPARSE + 3):
            f.mark_delivered(RequestId("a", 0, counter))  # 0 never arrives
        # the permanent gap at 0 was eventually abandoned
        assert f._floor[("a", 0)] > 0


class TestPendingRequests:
    def test_outstanding_in_counter_order(self):
        p = PendingRequests()
        p.add(req("a", 2))
        p.add(req("a", 0))
        p.add(req("a", 1))
        assert [r.request_id.counter for r in p.outstanding()] == [0, 1, 2]

    def test_resolve_removes(self):
        p = PendingRequests()
        r = req("a", 0)
        p.add(r)
        p.resolve(r.request_id)
        assert len(p) == 0
        p.resolve(r.request_id)  # idempotent


class TestFlushUnion:
    def test_union_of_partial_views(self):
        m0, m1, m2 = (seqd(VID, i, req("a", i)) for i in range(3))
        tail = flush_union([{0: m0, 1: m1}, {1: m1, 2: m2}])
        assert [m.seq for m in tail] == [0, 1, 2]

    def test_union_never_invents_sequence_numbers(self):
        """Orphans must not be given old-configuration seqs (the dead
        sequencer may have bound those numbers to other requests)."""
        m0 = seqd(VID, 0, req("a", 0))
        tail = flush_union([{0: m0}])
        assert [m.seq for m in tail] == [0]

    def test_empty(self):
        assert flush_union([{}]) == []


class TestCollectOrphans:
    def setup_method(self):
        from repro.gcs.ordering import collect_orphans

        self.collect = collect_orphans

    def test_orphans_exclude_sequenced(self):
        r = req("a", 0)
        tail = [seqd(VID, 0, r)]
        orphans = self.collect([tail], [(r, req("b", 7))])
        assert [o.request_id.counter for o in orphans] == [7]

    def test_orphans_deterministic_order(self):
        ra, rb = req("b", 1), req("a", 5)
        one = self.collect([], [(ra, rb)])
        two = self.collect([], [(rb,), (ra,)])
        assert [o.request_id for o in one] == [o.request_id for o in two]

    def test_orphans_deduplicated(self):
        r = req("a", 3)
        orphans = self.collect([], [(r,), (r,)])
        assert len(orphans) == 1

    def test_empty(self):
        assert self.collect([], [()]) == []


class TestGroupMap:
    def test_join_leave_idempotent(self):
        gm = GroupMap()
        assert gm.join("g", "s0")
        assert not gm.join("g", "s0")
        assert gm.leave("g", "s0")
        assert not gm.leave("g", "s0")

    def test_groups_of(self):
        gm = GroupMap()
        gm.join("g1", "s0")
        gm.join("g2", "s0")
        gm.join("g2", "s1")
        assert gm.groups_of("s0") == ("g1", "g2")
        assert gm.groups_of("s1") == ("g2",)

    def test_drop_node(self):
        gm = GroupMap()
        gm.join("g1", "s0")
        gm.join("g2", "s0")
        affected = gm.drop_node("s0")
        assert sorted(affected) == ["g1", "g2"]
        assert gm.members("g1") == frozenset()

    def test_view_filters_to_configuration(self):
        gm = GroupMap()
        gm.join("g", "s0")
        gm.join("g", "s9")  # not in config
        config = Configuration.make(VID, ["s0", "s1"])
        view = gm.view("g", config, 4)
        assert view.members == ("s0",)
        assert view.change_seq == 4

    def test_from_reports_each_node_authoritative(self):
        gm = GroupMap.from_reports({"s0": ("g1", "g2"), "s1": ("g1",)})
        assert gm.members("g1") == {"s0", "s1"}
        assert gm.members("g2") == {"s0"}

    def test_snapshot_roundtrip(self):
        gm = GroupMap()
        gm.join("g", "s1")
        gm.join("g", "s0")
        restored = GroupMap.from_snapshot(gm.snapshot())
        assert restored.members("g") == {"s0", "s1"}


class TestFailureDetector:
    def make_fd(self):
        self.now = 0.0
        self.changes = 0

        def bump():
            self.changes += 1

        return FailureDetector("me", 1.0, lambda: self.now, bump)

    def test_alive_after_heartbeat(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 0))
        assert fd.alive_peers() == {"p1"}
        assert fd.alive_set() == {"me", "p1"}
        assert self.changes == 1

    def test_own_heartbeat_ignored(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("me", 0, 0))
        assert fd.alive_peers() == frozenset()

    def test_expiry_after_timeout(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 0))
        self.now = 0.9
        fd.check()
        assert fd.alive_peers() == {"p1"}
        self.now = 1.1
        fd.check()
        assert fd.alive_peers() == frozenset()
        assert self.changes == 2

    def test_incarnation_change_fires_change(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 0))
        fd.on_heartbeat(Heartbeat("p1", 1, 0))
        assert self.changes == 2
        assert fd.incarnation_of("p1") == 1

    def test_steady_heartbeats_do_not_fire_changes(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 0))
        for _ in range(5):
            fd.on_heartbeat(Heartbeat("p1", 0, 0))
        assert self.changes == 1

    def test_forget(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 0))
        fd.forget("p1")
        assert fd.alive_peers() == frozenset()
        assert self.changes == 2

    def test_tracks_max_view_counter(self):
        fd = self.make_fd()
        fd.on_heartbeat(Heartbeat("p1", 0, 17))
        assert fd.max_view_counter_seen == 17


class TestVectorClock:
    def test_increment_and_get(self):
        vc = VectorClock().increment("a").increment("a").increment("b")
        assert vc.get("a") == 2 and vc.get("b") == 1 and vc.get("c") == 0

    def test_merge_is_componentwise_max(self):
        a = VectorClock({"a": 2, "b": 0})
        b = VectorClock({"a": 1, "b": 3})
        merged = a.merge(b)
        assert merged.get("a") == 2 and merged.get("b") == 3

    def test_partial_order(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"a": 2, "b": 1})
        assert a < b
        assert not b <= a

    def test_concurrency(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"b": 1})
        assert a.concurrent_with(b)
        assert not a.concurrent_with(a)

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({"a": 0}) == VectorClock()
