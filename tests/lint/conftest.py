"""Shared paths for the lint-engine tests."""

from pathlib import Path

import pytest

TESTS_DIR = Path(__file__).resolve().parents[1]
REPO_ROOT = TESTS_DIR.parent
FIXTURES = TESTS_DIR / "lint_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"
SRC = REPO_ROOT / "src"


@pytest.fixture(scope="session")
def bad_dir() -> Path:
    return BAD


@pytest.fixture(scope="session")
def good_dir() -> Path:
    return GOOD


@pytest.fixture(scope="session")
def src_dir() -> Path:
    return SRC
