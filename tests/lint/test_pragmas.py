"""allow() pragma semantics: same line, line above, id vs slug, and the
suppression counter."""

from textwrap import dedent

from repro.lint import lint_paths


def _write(tmp_path, name, body):
    path = tmp_path / "sim"
    path.mkdir(exist_ok=True)
    target = path / name
    target.write_text(dedent(body), encoding="utf-8")
    return target


def test_pragma_on_same_line(tmp_path):
    target = _write(
        tmp_path,
        "same_line.py",
        """\
        import time

        def measure():
            return time.time()  # repro-lint: allow(D101)
        """,
    )
    report = lint_paths([target])
    assert report.ok
    assert report.suppressed == 1


def test_pragma_on_line_above(tmp_path):
    target = _write(
        tmp_path,
        "line_above.py",
        """\
        import time

        def measure():
            # repro-lint: allow(wall-clock)
            return time.time()
        """,
    )
    report = lint_paths([target])
    assert report.ok
    assert report.suppressed == 1


def test_pragma_accepts_slug_or_id(tmp_path):
    target = _write(
        tmp_path,
        "spellings.py",
        """\
        import time

        def a():
            return time.time()  # repro-lint: allow(D101)

        def b():
            return time.time()  # repro-lint: allow(wall-clock)
        """,
    )
    report = lint_paths([target])
    assert report.ok
    assert report.suppressed == 2


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    target = _write(
        tmp_path,
        "wrong_rule.py",
        """\
        import time

        def measure():
            return time.time()  # repro-lint: allow(D102)
        """,
    )
    report = lint_paths([target])
    assert not report.ok
    assert report.suppressed == 0
    assert report.findings[0].rule == "D101"


def test_pragma_list_suppresses_multiple_rules(tmp_path):
    target = _write(
        tmp_path,
        "multi.py",
        """\
        import time
        import uuid

        def measure():
            # repro-lint: allow(D101, D102)
            return time.time(), uuid.uuid4()
        """,
    )
    report = lint_paths([target])
    assert report.ok
    assert report.suppressed == 2


def test_pragma_does_not_leak_to_other_lines(tmp_path):
    target = _write(
        tmp_path,
        "leak.py",
        """\
        import time

        def a():
            return time.time()  # repro-lint: allow(D101)

        def b():
            return time.time()
        """,
    )
    report = lint_paths([target])
    assert not report.ok
    assert report.suppressed == 1
    assert len(report.findings) == 1
    assert report.findings[0].line == 7
