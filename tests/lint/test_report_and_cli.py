"""The JSON report contract and the command-line front end."""

import json

import pytest

from repro.lint import all_rules, get_rule, lint_paths
from repro.lint.cli import build_parser, main


def test_report_json_contract(bad_dir):
    report = lint_paths([bad_dir])
    data = json.loads(report.to_json())
    assert data["version"] == 1
    assert data["ok"] is False
    assert data["files_scanned"] == 11
    assert data["suppressed"] == 0
    assert set(data["rules_run"]) == {r.rule_id for r in all_rules()}
    assert data["counts_by_rule"]["D101"] == 2
    first = data["findings"][0]
    assert set(first) == {"rule", "slug", "path", "line", "col", "message"}
    # findings arrive sorted by (path, line, col, rule)
    keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in data["findings"]]
    assert keys == sorted(keys)


def test_registry_catalogue():
    rules = all_rules()
    ids = [r.rule_id for r in rules]
    assert ids == sorted(ids)
    assert {r.rule_id for r in rules} == {
        "D101", "D102", "D103", "D104", "D105", "D106",
        "P201", "P202", "P203", "P204", "P205",
    }
    assert get_rule("D103").slug == "set-order"
    assert get_rule("set-order").rule_id == "D103"
    with pytest.raises(KeyError):
        get_rule("D999")


def test_cli_clean_run_exits_zero(good_dir, capsys):
    assert main([str(good_dir)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "2 suppressed" in out


def test_cli_findings_exit_one_and_render(bad_dir, capsys):
    assert main([str(bad_dir), "--select", "D101"]) == 1
    out = capsys.readouterr().out
    assert "D101(wall-clock)" in out
    assert "FAILED (D101:2)" in out


def test_cli_quiet_suppresses_findings(bad_dir, capsys):
    assert main([str(bad_dir), "--quiet"]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" not in out
    assert "FAILED" in out


def test_cli_json_artifact(bad_dir, tmp_path, capsys):
    artifact = tmp_path / "lint.json"
    assert main([str(bad_dir), "--json", str(artifact)]) == 1
    capsys.readouterr()
    data = json.loads(artifact.read_text(encoding="utf-8"))
    assert data["ok"] is False
    assert len(data["findings"]) == 24


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "no such file" in capsys.readouterr().out


def test_cli_unknown_rule_exits_two(good_dir, capsys):
    assert main([str(good_dir), "--select", "D999"]) == 2
    assert "unknown rule" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "D106", "P201", "P204"):
        assert rule_id in out


def test_parser_defaults_to_src():
    args = build_parser().parse_args([])
    assert args.paths == ["src"]
