"""Fixture-driven rule tests: every known-bad snippet trips exactly its
rule, and the known-good twin of each construct passes everything."""

import pytest

from repro.lint import lint_paths


def _findings(path, rule_id):
    report = lint_paths([path], select=[rule_id])
    return report.findings


# ---------------------------------------------------------------------------
# D-rules
# ---------------------------------------------------------------------------
def test_d101_wall_clock(bad_dir):
    found = _findings(bad_dir, "D101")
    assert len(found) == 2
    assert all(f.path.endswith("sim/clock.py") for f in found)
    assert {f.line for f in found} == {8, 12}


def test_d102_ambient_entropy(bad_dir):
    found = _findings(bad_dir, "D102")
    assert len(found) == 4
    assert all(f.path.endswith("sim/entropy.py") for f in found)
    messages = " ".join(f.message for f in found)
    for source in ("random.random", "uuid.uuid4", "numpy.random.rand", "os.urandom"):
        assert source in messages


def test_d103_set_order(bad_dir):
    found = _findings(bad_dir, "D103")
    assert len(found) == 4
    assert all(f.path.endswith("sim/set_order.py") for f in found)
    messages = " ".join(f.message for f in found)
    assert "for-loop over a set" in messages
    assert "join over a set" in messages
    assert "list(set)" in messages
    assert "comprehension over a set" in messages


def test_d104_id_order(bad_dir):
    found = _findings(bad_dir, "D104")
    assert len(found) == 2
    assert all(f.path.endswith("sim/id_order.py") for f in found)
    # one direct call, one by-reference (sorted(..., key=id))
    assert any("id()" in f.message for f in found)
    assert any("passed as a key" in f.message for f in found)


def test_d105_slots_required(bad_dir):
    found = _findings(bad_dir, "D105")
    assert len(found) == 1
    assert found[0].path.endswith("sim/engine.py")
    assert "Simulator" in found[0].message


def test_d106_mutable_default(bad_dir):
    found = _findings(bad_dir, "D106")
    assert len(found) == 2
    assert all(f.path.endswith("sim/defaults.py") for f in found)
    assert any("default argument" in f.message for f in found)
    assert any("class attribute" in f.message for f in found)


# ---------------------------------------------------------------------------
# P-rules
# ---------------------------------------------------------------------------
def test_p201_dispatch_orphan_and_ambiguity(bad_dir):
    found = _findings(bad_dir, "P201")
    assert len(found) == 2
    orphan = [f for f in found if "no dispatch site" in f.message]
    ambiguous = [f for f in found if "ambiguous" in f.message]
    assert len(orphan) == 1 and "Pong" in orphan[0].message
    assert len(ambiguous) == 1 and "Ping" in ambiguous[0].message
    assert orphan[0].path.endswith("gcs/messages.py")
    assert ambiguous[0].path.endswith("gcs/daemon.py")


def test_p202_timer_cancel(bad_dir):
    found = _findings(bad_dir, "P202")
    assert len(found) == 1
    assert found[0].path.endswith("gcs/daemon.py")
    assert "_poll_timer" in found[0].message


def test_p203_frozen_and_mutation(bad_dir):
    found = _findings(bad_dir, "P203")
    assert len(found) == 2
    unfrozen = [f for f in found if "not @dataclass(frozen=True)" in f.message]
    mutation = [f for f in found if "mutates received object" in f.message]
    assert len(unfrozen) == 1 and "Mutable" in unfrozen[0].message
    # the mutation is through a local alias (payload = message.payload)
    assert len(mutation) == 1 and "'payload'" in mutation[0].message


def test_p204_knob_sync(bad_dir):
    found = _findings(bad_dir, "P204")
    assert len(found) == 2
    assert any("dead_knob" in f.message for f in found)
    assert any("ghost_knob" in f.message for f in found)


def test_p205_codec_registration(bad_dir):
    found = _findings(bad_dir, "P205")
    assert len(found) == 2
    missing = [f for f in found if "is not registered" in f.message]
    fast_orphan = [f for f in found if "register_fast" in f.message]
    assert len(missing) == 1 and "Pong" in missing[0].message
    # the finding points at the unregistered class, not at the codec
    assert missing[0].path.endswith("gcs/messages.py")
    # a fast-path registration without its generic fallback is flagged
    # at the register_fast() call site
    assert len(fast_orphan) == 1 and "Pong" in fast_orphan[0].message
    assert fast_orphan[0].path.endswith("net/codec.py")


# ---------------------------------------------------------------------------
# totals and the good twin
# ---------------------------------------------------------------------------
def test_bad_fixture_totals(bad_dir):
    report = lint_paths([bad_dir])
    assert not report.ok
    assert report.counts_by_rule() == {
        "D101": 2,
        "D102": 4,
        "D103": 4,
        "D104": 2,
        "D105": 1,
        "D106": 2,
        "P201": 2,
        "P202": 1,
        "P203": 2,
        "P204": 2,
        "P205": 2,
    }


def test_good_fixtures_are_clean(good_dir):
    report = lint_paths([good_dir])
    assert report.ok
    assert report.findings == []
    # the host-timing fixture exercises both pragma spellings
    assert report.suppressed == 2


def test_unknown_rule_selection_raises(bad_dir):
    with pytest.raises(KeyError):
        lint_paths([bad_dir], select=["D999"])
