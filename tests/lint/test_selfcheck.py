"""The repo gates itself: ``repro lint src/`` must stay clean, and P201
must catch a wire message that gains no dispatch site."""

import os
import shutil
import subprocess
import sys

from repro.lint import lint_paths


def test_src_tree_is_clean(src_dir):
    report = lint_paths([src_dir])
    assert report.ok, "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 50


def test_src_tree_clean_via_cli(src_dir):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(src_dir)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src_dir)},
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_every_wire_message_is_dispatched(src_dir):
    """Dispatch completeness on the real tree, isolated to P201 so the
    failure message names the orphaned message class."""
    report = lint_paths([src_dir], select=["P201"])
    assert report.ok, "\n".join(f.render() for f in report.findings)


def test_new_wire_message_without_handler_fails(src_dir, tmp_path):
    """Adding a message class to gcs/messages.py without touching any
    dispatcher must turn the lint red — the regression the gate exists
    to catch."""
    staged = tmp_path / "gcs"
    staged.mkdir()
    for name in ("messages.py", "daemon.py", "client_api.py"):
        shutil.copy(src_dir / "repro" / "gcs" / name, staged / name)
    with (staged / "messages.py").open("a", encoding="utf-8") as handle:
        handle.write(
            "\n\n@dataclass(frozen=True, slots=True)\n"
            "class Orphaned:\n    seq: int\n"
        )
    report = lint_paths([tmp_path], select=["P201"])
    assert not report.ok
    assert any("Orphaned" in f.message for f in report.findings)


def test_every_wire_message_is_codec_registered(src_dir):
    """Codec completeness on the real tree: everything the simulator can
    send must also encode for the live runtime."""
    report = lint_paths([src_dir], select=["P205"])
    assert report.ok, "\n".join(f.render() for f in report.findings)


def test_new_wire_message_without_codec_registration_fails(src_dir, tmp_path):
    """A message class added without a codec register() call must turn
    P205 red, mirroring the P201 staging check."""
    staged_gcs = tmp_path / "gcs"
    staged_gcs.mkdir()
    staged_net = tmp_path / "net"
    staged_net.mkdir()
    shutil.copy(src_dir / "repro" / "gcs" / "messages.py", staged_gcs / "messages.py")
    shutil.copy(src_dir / "repro" / "net" / "codec.py", staged_net / "codec.py")
    with (staged_gcs / "messages.py").open("a", encoding="utf-8") as handle:
        handle.write(
            "\n\n@dataclass(frozen=True, slots=True)\n"
            "class Unregistered:\n    seq: int\n"
        )
    report = lint_paths([tmp_path], select=["P205"])
    assert not report.ok
    assert any("Unregistered" in f.message for f in report.findings)
