"""Strict-typing gate smoke tests.

mypy and ruff are CI dependencies, not runtime dependencies; locally
these tests skip when the tools are absent (the blocking check lives in
.github/workflows/ci.yml).
"""

import shutil
import subprocess
import sys

import pytest

from .conftest import REPO_ROOT, SRC


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_check_passes():
    result = subprocess.run(
        ["ruff", "check", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
