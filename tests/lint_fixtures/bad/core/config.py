"""Fixture knob declarations: one live, one dead."""

from dataclasses import dataclass


@dataclass
class Policy:
    read_knob: float = 0.5
    dead_knob: int = 3  # P204: never read by any consumer module
