"""Fixture knob consumer: reads one declared and one phantom knob."""


def period(policy) -> float:
    return policy.read_knob


def phantom(policy) -> int:
    return policy.ghost_knob  # P204: not declared in config.py
