"""Fixture endpoint: ambiguous dispatch, leaked timer, payload mutation."""

from .messages import Mutable, Ping


class Daemon:
    def on_message(self, sender, message) -> None:
        payload = message.payload
        if isinstance(payload, Ping):
            payload.seq += 1  # P203 part B: mutates a received object alias
        elif isinstance(payload, Mutable):
            self._note(payload)

    def on_group_message(self, view, message) -> None:
        if isinstance(message.payload, Ping):  # P201: second Ping site here
            self._note(message.payload)

    def start(self) -> None:
        self._poll_timer = self.set_timer(1.0, self._poll)  # P202: no cancel

    def _note(self, payload) -> None:
        pass

    def _poll(self) -> None:
        pass

    def set_timer(self, delay, callback):
        raise NotImplementedError
