"""Fixture wire vocabulary: one orphan message, one mutable message."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    seq: int


@dataclass(frozen=True, slots=True)
class Pong:  # P201: never dispatched anywhere
    seq: int


@dataclass(slots=True)
class Mutable:  # P203 part A: not frozen
    seq: int
