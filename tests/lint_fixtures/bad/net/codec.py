"""Fixture codec: Pong is a wire message but never registered (P205),
and its fast-path registration has no generic fallback registration."""

from gcs.messages import Mutable, Ping, Pong


def register(cls):
    return cls


def register_fast(cls, tag, encoder, decoder):
    return cls


register(Ping)
register(Mutable)
# Pong is missing: P205
register_fast(Pong, 14, None, None)  # fast path without register(): P205
