"""Fixture codec: Pong is a wire message but never registered (P205)."""

from gcs.messages import Mutable, Ping


def register(cls):
    return cls


register(Ping)
register(Mutable)
# Pong is missing: P205
