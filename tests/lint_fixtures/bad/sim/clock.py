"""Fixture: D101 wall-clock reads inside simulation scope."""

import datetime
import time


def stamp_event() -> float:
    return time.time()  # D101


def log_line() -> str:
    return str(datetime.datetime.now())  # D101
