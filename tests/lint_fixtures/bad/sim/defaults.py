"""Fixture: D106 shared mutable defaults."""


def collect(event, bucket=[]):  # D106: mutable default argument
    bucket.append(event)
    return bucket


class Cache:
    entries = {}  # D106: shared mutable class attribute

    def put(self, key, value) -> None:
        self.entries[key] = value
