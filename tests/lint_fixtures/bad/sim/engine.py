"""Fixture: D105 — a class in a designated hot module without __slots__."""


class Simulator:  # D105: hot module, no __slots__
    def __init__(self) -> None:
        self.now = 0.0
