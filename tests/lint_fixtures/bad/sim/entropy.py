"""Fixture: D102 ambient entropy sources."""

import os
import random
import uuid

import numpy as np


def jitter() -> float:
    return random.random()  # D102


def token() -> str:
    return uuid.uuid4().hex  # D102


def noise() -> float:
    return float(np.random.rand())  # D102


def salt() -> bytes:
    return os.urandom(8)  # D102
