"""Fixture: D104 object-identity ordering."""


def trace_key(event) -> int:
    return id(event)  # D104: id() call


def stable_sort(items: list) -> list:
    return sorted(items, key=id)  # D104: id passed by reference
