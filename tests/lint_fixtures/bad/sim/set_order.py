"""Fixture: D103 set iteration orders escaping into results."""


def broadcast(members: set) -> list:
    sent = []
    for member in members:  # D103: for-loop over a set
        sent.append(member)
    return sent


def digest(members: set) -> str:
    return ",".join(members)  # D103: join over a set


def freeze(members: set) -> list:
    return list(members)  # D103: list(set)


def first_ids() -> list:
    alive = {1, 2, 3}
    return [node for node in alive]  # D103: comprehension over a set
