"""Fixture knob declarations: every knob is read by a consumer."""

from dataclasses import dataclass


@dataclass
class Policy:
    read_knob: float = 0.5
