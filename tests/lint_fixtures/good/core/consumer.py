"""Fixture knob consumer: reads exactly the declared vocabulary."""


def period(policy) -> float:
    return policy.read_knob
