"""Fixture endpoint: single dispatch site, timer properly cancelled."""

from .messages import Ping


class Daemon:
    __slots__ = ("_poll_timer",)

    def on_message(self, sender, message) -> None:
        if isinstance(message.payload, Ping):
            self._note(message.payload)

    def start(self) -> None:
        self._poll_timer = self.set_timer(1.0, self._poll)

    def shutdown(self) -> None:
        self._poll_timer.cancel()

    def _note(self, payload) -> None:
        pass

    def _poll(self) -> None:
        pass

    def set_timer(self, delay, callback):
        raise NotImplementedError
