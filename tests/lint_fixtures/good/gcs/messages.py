"""Fixture wire vocabulary: frozen, slotted, dispatched exactly once."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Ping:
    seq: int
