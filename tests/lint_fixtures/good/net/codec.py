"""Fixture codec: every wire message is registered; the fast path is a
subset of the generic registrations."""

from gcs.messages import Ping


def register(cls):
    return cls


def register_fast(cls, tag, encoder, decoder):
    return cls


register(Ping)
register_fast(Ping, 14, None, None)
