"""Fixture codec: every wire message is registered."""

from gcs.messages import Ping


def register(cls):
    return cls


register(Ping)
