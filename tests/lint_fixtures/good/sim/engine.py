"""Fixture: deterministic, slotted simulation code that passes every rule."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Tick:
    at: float


class Clock:
    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, delta: float) -> None:
        self.now += delta


def ordered_members(members: set) -> list:
    return sorted(members)  # set consumed order-independently


def quorum(members: set) -> bool:
    return len(members) >= 2


def smallest(members: set) -> int:
    return min(node for node in members)
