"""Fixture: a genuine host-time measurement, suppressed by pragma."""

import time


def measure(fn) -> float:
    started = time.perf_counter()  # repro-lint: allow(wall-clock)
    fn()
    return time.perf_counter() - started  # repro-lint: allow(D101)
