"""Tests for trace-based primary interval analysis, on a live cluster."""

from repro.metrics.session_audit import (
    multi_primary_time,
    no_primary_time,
    primary_intervals,
)
from tests.core.conftest import make_vod_cluster, start_streaming_session


def test_single_primary_has_one_open_interval():
    cluster = make_vod_cluster()
    client, handle = start_streaming_session(cluster)
    intervals = primary_intervals(cluster, handle.session_id)
    assert len(intervals) == 1
    ((server, spans),) = intervals.items()
    assert len(spans) == 1
    start, end = spans[0]
    assert end == cluster.sim.now


def test_crash_closes_interval_and_opens_new_one():
    cluster = make_vod_cluster()
    client, handle = start_streaming_session(cluster)
    victim = cluster.primaries_of(handle.session_id)[0]
    cluster.crash_server(victim)
    cluster.run(4.0)
    intervals = primary_intervals(cluster, handle.session_id)
    assert len(intervals) == 2
    victim_spans = intervals[victim]
    assert victim_spans[0][1] < cluster.sim.now  # closed at crash


def test_no_multi_primary_in_clean_failover():
    cluster = make_vod_cluster()
    client, handle = start_streaming_session(cluster)
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(4.0)
    assert multi_primary_time(cluster, handle.session_id) == 0.0


def test_no_primary_time_covers_takeover_gap():
    cluster = make_vod_cluster()
    client, handle = start_streaming_session(cluster)
    start = cluster.sim.now
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(4.0)
    gap = no_primary_time(cluster, handle.session_id, start, cluster.sim.now)
    assert 0.0 < gap < 2.0  # detection + reallocation, well under 2s


def test_no_primary_time_zero_when_stable():
    cluster = make_vod_cluster()
    client, handle = start_streaming_session(cluster)
    start = cluster.sim.now
    cluster.run(3.0)
    assert no_primary_time(cluster, handle.session_id, start, cluster.sim.now) == 0.0


def test_multi_primary_during_non_transitive_cut():
    cluster = make_vod_cluster(n_servers=2, replication=2)
    client, handle = start_streaming_session(cluster)
    cluster.network.topology.cut_link("s0", "s1")
    cluster.run(6.0)
    assert multi_primary_time(cluster, handle.session_id) > 3.0
