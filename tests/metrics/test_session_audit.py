"""Unit tests for the session audit metrics."""

import pytest

from repro.core.client import ReceivedResponse, SessionHandle
from repro.metrics.session_audit import (
    audit_session,
    dual_sender_time,
    max_concurrent_senders,
    service_gaps,
)


def handle_with(responses, updates=()):
    handle = SessionHandle(
        session_id="s", unit_id="u", client_id="c", requested_at=0.0
    )
    handle.received = [
        ReceivedResponse(
            time=t,
            sender=sender,
            index=index,
            klass=klass,
            based_on_update=based_on,
            uncertain=uncertain,
        )
        for (t, sender, index, klass, based_on, uncertain) in responses
    ]
    handle.updates_sent = [(t, c, u) for (t, c, u) in updates]
    handle.update_counter = max((c for _, c, _ in updates), default=0)
    return handle


def r(t, index, sender="s0", klass="I", based_on=0, uncertain=False):
    return (t, sender, index, klass, based_on, uncertain)


class TestAuditSession:
    def test_clean_stream(self):
        handle = handle_with([r(0.1 * i, i) for i in range(10)])
        report = audit_session(handle)
        assert report.responses_received == 10
        assert report.duplicate_count == 0
        assert report.missing_count == 0
        assert report.stale_count == 0
        assert report.max_gap == pytest.approx(0.1)

    def test_duplicates_counted(self):
        handle = handle_with([r(0.0, 0), r(0.1, 1), r(0.2, 1), r(0.3, 1)])
        report = audit_session(handle)
        assert report.duplicate_count == 2
        assert report.distinct_indices == 2
        assert report.duplicate_fraction == 0.5

    def test_missing_counted(self):
        handle = handle_with([r(0.0, 0), r(0.1, 3)])
        assert audit_session(handle).missing_count == 2

    def test_stale_requires_grace(self):
        updates = [(1.0, 1, {"op": "skip"})]
        # response 0.5s after the update: inside the 1s grace, not stale
        fresh = handle_with([r(1.5, 0, based_on=0)], updates)
        assert audit_session(fresh).stale_count == 0
        # response 2.5s after: the primary should have known update 1
        stale = handle_with([r(3.5, 0, based_on=0)], updates)
        assert audit_session(stale).stale_count == 1
        applied = handle_with([r(3.5, 0, based_on=1)], updates)
        assert audit_session(applied).stale_count == 0

    def test_uncertain_resends_counted(self):
        handle = handle_with([r(0.0, 0), r(0.1, 0, uncertain=True)])
        assert audit_session(handle).uncertain_resends == 1

    def test_until_cutoff(self):
        handle = handle_with([r(0.0, 0), r(5.0, 1)])
        assert audit_session(handle, until=1.0).responses_received == 1

    def test_empty(self):
        report = audit_session(handle_with([]))
        assert report.responses_received == 0
        assert report.missing_count == 0


class TestServiceGaps:
    def test_detects_gap(self):
        handle = handle_with([r(0.0, 0), r(0.1, 1), r(2.0, 2), r(2.1, 3)])
        gaps = service_gaps(handle, threshold=0.5)
        assert gaps == [(0.1, 2.0)]

    def test_no_gaps(self):
        handle = handle_with([r(0.1 * i, i) for i in range(5)])
        assert service_gaps(handle, threshold=0.5) == []


class TestConcurrentSenders:
    def test_single_sender(self):
        handle = handle_with([r(0.1 * i, i) for i in range(5)])
        assert max_concurrent_senders(handle) == 1

    def test_handover_within_window(self):
        handle = handle_with([r(0.0, 0, "s0"), r(0.5, 1, "s1")])
        assert max_concurrent_senders(handle, window=1.0) == 2
        assert max_concurrent_senders(handle, window=0.3) == 1

    def test_dual_sender_time_handover_vs_overlap(self):
        # clean handover: one cross pair, separated by a takeover gap
        handover = handle_with([r(0.0, 0, "s0"), r(0.6, 1, "s1"), r(0.7, 2, "s1")])
        assert dual_sender_time(handover, max_dt=0.3) == 0.0
        # sustained overlap: interleaved senders
        overlap = handle_with(
            [r(0.1 * i, i, "s0" if i % 2 == 0 else "s1") for i in range(10)]
        )
        assert dual_sender_time(overlap, max_dt=0.3) == pytest.approx(0.9)


class TestCollectors:
    def test_summarize(self):
        from repro.metrics.collectors import summarize

        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["n"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["p50"] == 2.5

    def test_summarize_empty(self):
        from repro.metrics.collectors import summarize

        stats = summarize([])
        assert stats["n"] == 0
        assert stats["mean"] != stats["mean"]  # NaN

    def test_table_rendering(self):
        from repro.metrics.report import Table

        table = Table(title="T", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("n")
        rendered = table.render()
        assert "T" in rendered and "2.5" in rendered and "note: n" in rendered

    def test_table_row_length_checked(self):
        from repro.metrics.report import Table

        table = Table(title="T", columns=["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)
