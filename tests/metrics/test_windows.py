"""Unit tests for the interval algebra behind window-restricted oracles."""

import pytest

from repro.metrics.windows import (
    clip_intervals,
    intersect_intervals,
    max_length,
    max_silence_within,
    merge_intervals,
    pad_intervals,
    silence_spans,
    subtract_intervals,
    total_length,
)


class TestMerge:
    def test_coalesces_overlaps_and_touches(self):
        assert merge_intervals([(3.0, 5.0), (1.0, 2.0), (2.0, 4.0)]) == [(1.0, 5.0)]

    def test_keeps_disjoint_spans(self):
        assert merge_intervals([(5.0, 6.0), (1.0, 2.0)]) == [(1.0, 2.0), (5.0, 6.0)]

    def test_drops_empty_and_inverted(self):
        assert merge_intervals([(2.0, 2.0), (4.0, 3.0)]) == []


class TestClip:
    def test_restricts_to_range(self):
        spans = [(0.0, 3.0), (5.0, 9.0)]
        assert clip_intervals(spans, 2.0, 6.0) == [(2.0, 3.0), (5.0, 6.0)]

    def test_fully_outside_vanishes(self):
        assert clip_intervals([(0.0, 1.0)], 2.0, 3.0) == []


class TestIntersect:
    def test_pairwise_overlap(self):
        a = [(0.0, 4.0), (6.0, 10.0)]
        b = [(3.0, 7.0)]
        assert intersect_intervals(a, b) == [(3.0, 4.0), (6.0, 7.0)]

    def test_disjoint_sets_empty(self):
        assert intersect_intervals([(0.0, 1.0)], [(2.0, 3.0)]) == []


class TestSubtract:
    def test_punches_holes(self):
        base = [(0.0, 10.0)]
        remove = [(2.0, 3.0), (5.0, 7.0)]
        assert subtract_intervals(base, remove) == [
            (0.0, 2.0),
            (3.0, 5.0),
            (7.0, 10.0),
        ]

    def test_full_cover_leaves_nothing(self):
        assert subtract_intervals([(1.0, 2.0)], [(0.0, 5.0)]) == []

    def test_removal_overhanging_edges(self):
        assert subtract_intervals([(2.0, 8.0)], [(0.0, 3.0), (7.0, 9.0)]) == [
            (3.0, 7.0)
        ]


class TestPadAndLengths:
    def test_pad_grows_and_remerges(self):
        # padding makes the two disruptions touch, so they coalesce
        assert pad_intervals([(2.0, 3.0), (4.0, 5.0)], 0.5) == [(1.5, 5.5)]

    def test_total_and_max_length(self):
        spans = [(0.0, 2.0), (5.0, 6.0)]
        assert total_length(spans) == pytest.approx(3.0)
        assert max_length(spans) == pytest.approx(2.0)
        assert max_length([]) == 0.0


class TestSilence:
    def test_spans_between_events(self):
        spans = silence_spans([2.0, 5.0], 0.0, 10.0)
        assert spans == [(0.0, 2.0), (2.0, 5.0), (5.0, 10.0)]

    def test_spans_not_merged_across_events(self):
        # adjacent silences share the event between them; coalescing would
        # erase the response and fake a longer silence
        spans = silence_spans([5.0], 0.0, 10.0)
        assert spans == [(0.0, 5.0), (5.0, 10.0)]
        assert max((e - s for s, e in spans)) == 5.0

    def test_events_outside_range_ignored(self):
        assert silence_spans([-1.0, 20.0], 0.0, 4.0) == [(0.0, 4.0)]

    def test_max_silence_chopped_at_window_edges(self):
        # a 6-second silence spanning a disruption: only its clean residue
        # (1s before + 2s after the excused hole) may count
        times = [2.0, 8.0]
        windows = [(0.0, 3.0), (6.0, 10.0)]
        assert max_silence_within(times, windows) == pytest.approx(2.0)

    def test_max_silence_no_windows_is_zero(self):
        assert max_silence_within([1.0], []) == 0.0

    def test_max_silence_simple(self):
        assert max_silence_within([2.0, 3.0], [(0.0, 10.0)]) == pytest.approx(7.0)
