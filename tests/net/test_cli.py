"""The live-runtime CLI: `repro cluster` and `repro serve`."""

import json
import os
import socket
import subprocess
import sys
from pathlib import Path

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_cluster_cli_clean_run(tmp_path, capsys):
    artifact = tmp_path / "audit.json"
    code = main(
        [
            "cluster",
            "--nodes",
            "3",
            "--loopback",
            "--requests",
            "20",
            "--update-interval",
            "0.02",
            "--settle",
            "1.0",
            "--audit-json",
            str(artifact),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(artifact.read_text())
    assert report["clean"] is True
    assert report["session"]["updates_sent"] == 20
    assert '"clean": true' in out


def _free_ports(count):
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def test_serve_three_processes_form_a_view():
    """Three separate OS processes over real TCP agree on one 3-member
    view — the multi-process deployment path."""
    ports = _free_ports(3)
    nodes = [f"s{i}" for i in range(3)]
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    procs = []
    for i, node in enumerate(nodes):
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--node-id",
            node,
            "--listen",
            f"127.0.0.1:{ports[i]}",
            "--duration",
            "6",
            "--expect-members",
            "3",
        ]
        for j, peer in enumerate(nodes):
            if j != i:
                cmd += ["--peer", f"{peer}=127.0.0.1:{ports[j]}"]
        procs.append(
            subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
            )
        )
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=60)
        outputs.append((proc.returncode, out, err))
    for code, out, err in outputs:
        assert code == 0, f"serve exited {code}: {out}\n{err}"
        status = json.loads(out)
        assert sorted(status["members"]) == nodes
        assert status["frames_received"] > 0


def test_serve_bad_peer_spec_exits_two(capsys):
    code = main(
        ["serve", "--node-id", "s0", "--listen", "127.0.0.1:1", "--peer", "nonsense"]
    )
    assert code == 2
    assert "expected NAME=HOST:PORT" in capsys.readouterr().err
