"""The binary codec: round-trip fidelity and strict rejection.

The property test is the codec completeness gate from the live-runtime
work: every frozen wire dataclass in ``core/wire.py`` and
``gcs/messages.py`` must be registered and must survive an
encode/decode round trip with arbitrary wire values in its fields.
"""

import dataclasses
from dataclasses import dataclass, fields, is_dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.wire as wire_module
import repro.gcs.messages as messages_module
from repro.gcs.messages import (
    ClientAck,
    ClientMcast,
    Heartbeat,
    OrderRequest,
    RequestId,
    Sequenced,
    SequencedBatch,
)
from repro.gcs.view import ViewId
from repro.net.codec import (
    MAX_FRAME,
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    TruncatedFrameError,
    UnknownTypeError,
    WireEnvelope,
    decode_frame,
    encode_envelope_frame,
    encode_frame,
    encode_payload,
    fast_path_types,
    frame_size,
    registered_types,
    split_frames,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
# Leaves only produce values the codec round-trips exactly: no NaN (x != x
# breaks equality), no int/bool confusion (bools encode via their own tags).
_leaves = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20)
)

_wire_values = st.recursive(
    _leaves,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.frozensets(st.integers(), max_size=4)
    ),
    max_leaves=12,
)


def _instance_strategy(cls):
    """Build ``cls`` with arbitrary wire values in every field (wire
    dataclasses carry no validation; the codec is positional)."""
    return st.tuples(*[_wire_values for _ in fields(cls)]).map(
        lambda values: cls(*values)
    )


def _module_wire_classes(module):
    return [
        obj
        for obj in vars(module).values()
        if is_dataclass(obj)
        and isinstance(obj, type)
        and obj.__module__ == module.__name__
    ]


# ---------------------------------------------------------------------------
# completeness gate
# ---------------------------------------------------------------------------
def test_every_wire_dataclass_is_registered():
    registered = set(registered_types())
    for module in (wire_module, messages_module):
        for cls in _module_wire_classes(module):
            assert cls in registered, (
                f"{cls.__name__} is a wire dataclass but has no codec "
                "registration (P205 should also be failing)"
            )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_registered_types_round_trip(data):
    """Every registered dataclass survives encode -> decode exactly, on
    BOTH codec tiers: the default path (fast where a specialized encoder
    fits, falling back otherwise — arbitrary field values exercise the
    fallback constantly) and the forced-generic path."""
    for cls in registered_types():
        instance = data.draw(_instance_strategy(cls), label=cls.__name__)
        assert decode_frame(encode_frame(instance)) == instance
        assert decode_frame(encode_frame(instance, fast=False)) == instance


@settings(max_examples=100, deadline=None)
@given(value=_wire_values)
def test_plain_values_round_trip(value):
    assert decode_frame(encode_frame(value)) == value


def test_set_encoding_is_canonical():
    a = encode_frame(frozenset([1, 2, 3]))
    b = encode_frame(frozenset([3, 1, 2]))
    assert a == b
    assert decode_frame(a) == frozenset([1, 2, 3])


def test_frame_size_matches_encoding():
    envelope = WireEnvelope(
        sender="s0", receiver="s1", kind="hb", size=1, payload=[1, 2.5, "x"]
    )
    assert frame_size(envelope) == len(encode_frame(envelope))


# ---------------------------------------------------------------------------
# strict rejection
# ---------------------------------------------------------------------------
def test_unregistered_dataclass_rejected():
    @dataclass(frozen=True)
    class NotOnTheWire:
        x: int

    with pytest.raises(UnknownTypeError):
        encode_frame(NotOnTheWire(x=1))


def test_unencodable_object_rejected():
    with pytest.raises(UnknownTypeError):
        encode_frame(object())


def test_truncated_frames_rejected():
    frame = encode_frame([1, 2, 3])
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            decode_frame(frame[:cut])


def test_trailing_bytes_rejected():
    frame = encode_frame("hello")
    with pytest.raises(CodecError):
        decode_frame(frame + b"\x00")


def test_version_skew_rejected():
    frame = bytearray(encode_frame(42))
    frame[4] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="version"):
        decode_frame(bytes(frame))


def test_unknown_type_id_rejected():
    # hand-build a dataclass frame with an id beyond the registry
    body = bytearray([WIRE_VERSION, 13])  # _T_DATACLASS
    body += (60_000).to_bytes(2, "big")
    body += bytes([0])
    frame = len(body).to_bytes(4, "big") + bytes(body)
    with pytest.raises(UnknownTypeError):
        decode_frame(frame)


def test_field_count_mismatch_rejected():
    # force the generic form: the fast envelope shell has no count byte
    frame = bytearray(encode_frame(WireEnvelope("a", "b", "k", 1, None), fast=False))
    n_fields = len(dataclasses.fields(WireEnvelope))
    # the field-count byte follows tag(1)+type_id(2) inside the body
    index = frame.index(bytes([13])) + 3
    assert frame[index] == n_fields
    frame[index] = n_fields + 1
    with pytest.raises(CodecError):
        decode_frame(bytes(frame))


def test_oversized_length_prefix_rejected():
    frame = (MAX_FRAME + 1).to_bytes(4, "big") + b"\x01"
    with pytest.raises(CodecError):
        decode_frame(frame)
    with pytest.raises(CodecError):
        split_frames(bytearray(frame))


# ---------------------------------------------------------------------------
# the struct fast path: two byte forms, one wire contract
# ---------------------------------------------------------------------------
def _realistic_fast_instances():
    """Instances shaped the way the protocol actually builds them, so the
    specialized encoders engage instead of falling back."""
    rid = RequestId("c0", 1, 42)
    view = ViewId(3, "s0")
    order = OrderRequest(rid, "unit:demo", {"op": "rate", "value": 24.0}, 33)
    seq = Sequenced(view, 11, order)
    return [
        WireEnvelope("s0", "s1", "gcs", 7, Heartbeat("s0", 1, 3, view)),
        Heartbeat("s1", 2, 9, None),
        rid,
        view,
        ClientAck(rid),
        order,
        ClientMcast(rid, "unit:demo", ("chunk", 4), 12),
        seq,
        SequencedBatch(view, (seq, Sequenced(view, 12, order))),
    ]


def test_fast_types_cover_the_hot_frames():
    fast = set(fast_path_types())
    for cls in (WireEnvelope, Heartbeat, ClientAck, SequencedBatch):
        assert cls in fast


def test_fast_frames_decode_identically_to_generic_frames():
    """The cross-path contract: for any value both byte forms decode to
    the same object — a fast frame through the (one) decoder equals the
    generic frame through the same decoder."""
    for instance in _realistic_fast_instances():
        fast_frame = encode_frame(instance)
        generic_frame = encode_frame(instance, fast=False)
        # the specialized form actually engaged (and is never larger)
        assert fast_frame != generic_frame
        assert len(fast_frame) <= len(generic_frame)
        assert decode_frame(fast_frame) == instance
        assert decode_frame(generic_frame) == instance


def test_fast_encoder_falls_back_on_unpackable_fields():
    """A field the packed layout cannot hold (wrong type, out-of-range
    int, >255-byte string) silently degrades to the generic form — byte
    for byte, so the fallback is invisible on the wire."""
    awkward = [
        Heartbeat(3.5, 1, 2, None),  # sender not a str
        Heartbeat("s0", -1, 2, None),  # negative u32
        Heartbeat("s0", 2**40, 2, None),  # overflows u32
        Heartbeat("x" * 300, 1, 2, None),  # str8 overflow
        Heartbeat("s0", True, 2, None),  # bool is not an int on this wire
    ]
    for instance in awkward:
        assert encode_frame(instance) == encode_frame(instance, fast=False)
        assert decode_frame(encode_frame(instance)) == instance
    # a fallen-back shell may still carry fast-encoded children: the
    # batch degrades to the generic dataclass form (tag 13 right after
    # the version byte) while its nested view id stays specialized
    batch = SequencedBatch(ViewId(1, "s0"), [1, 2])  # list, not tuple
    frame = encode_frame(batch)
    assert frame[5] == 13
    assert decode_frame(frame) == batch


def test_fast_frames_reject_every_truncation():
    for instance in _realistic_fast_instances():
        frame = encode_frame(instance)
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                decode_frame(frame[:cut])


def test_envelope_splice_matches_whole_frame_encoding():
    """encode_envelope_frame around a cached payload must be
    byte-identical to encoding the assembled WireEnvelope — for packable
    and unpackable addressing fields alike (the generic-shell fallback)."""
    payload = Heartbeat("s0", 1, 3, ViewId(3, "s0"))
    cases = [
        ("s0", "s1", "gcs", 7),
        (None, ("odd", "sender"), "gcs", -1),  # forces the generic shell
        ("s0", "s1", "x" * 300, 2**40),  # str8 + u32 overflow
    ]
    for sender, receiver, kind, size in cases:
        spliced = encode_envelope_frame(
            sender, receiver, kind, size, encode_payload(payload)
        )
        whole = encode_frame(WireEnvelope(sender, receiver, kind, size, payload))
        assert spliced == whole
        assert decode_frame(spliced) == WireEnvelope(
            sender, receiver, kind, size, payload
        )


# ---------------------------------------------------------------------------
# stream reassembly
# ---------------------------------------------------------------------------
def test_split_frames_keeps_partial_tail():
    f1, f2 = encode_frame("one"), encode_frame([2, 2])
    buffer = bytearray(f1 + f2[:3])
    frames = split_frames(buffer)
    assert frames == [f1]
    assert bytes(buffer) == f2[:3]


def test_frame_decoder_across_chunks():
    decoder = FrameDecoder()
    stream = b"".join(encode_frame(v) for v in ("a", {"k": 1}, [True, None]))
    out = []
    for i in range(0, len(stream), 7):
        out.extend(decoder.feed(stream[i : i + 7]))
    assert out == ["a", {"k": 1}, [True, None]]
    assert decoder.pending_bytes == 0


def test_coalesced_payload_splits_at_every_boundary():
    """A coalesced transport write concatenates frames (fast and generic
    mixed); the receiver must reassemble them from arbitrary
    ``data_received`` chunk boundaries."""
    values = _realistic_fast_instances() + ["generic", {"k": (1, 2)}, None]
    coalesced = b"".join(encode_frame(v) for v in values)
    for chunk_size in (1, 2, 3, 5, 16, len(coalesced)):
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(coalesced), chunk_size):
            out.extend(decoder.feed(coalesced[i : i + chunk_size]))
        assert out == values
        assert decoder.pending_bytes == 0
