"""The binary codec: round-trip fidelity and strict rejection.

The property test is the codec completeness gate from the live-runtime
work: every frozen wire dataclass in ``core/wire.py`` and
``gcs/messages.py`` must be registered and must survive an
encode/decode round trip with arbitrary wire values in its fields.
"""

import dataclasses
from dataclasses import dataclass, fields, is_dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.wire as wire_module
import repro.gcs.messages as messages_module
from repro.net.codec import (
    MAX_FRAME,
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    TruncatedFrameError,
    UnknownTypeError,
    WireEnvelope,
    decode_frame,
    encode_frame,
    frame_size,
    registered_types,
    split_frames,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
# Leaves only produce values the codec round-trips exactly: no NaN (x != x
# breaks equality), no int/bool confusion (bools encode via their own tags).
_leaves = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**70), max_value=2**70)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=20)
)

_wire_values = st.recursive(
    _leaves,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.frozensets(st.integers(), max_size=4)
    ),
    max_leaves=12,
)


def _instance_strategy(cls):
    """Build ``cls`` with arbitrary wire values in every field (wire
    dataclasses carry no validation; the codec is positional)."""
    return st.tuples(*[_wire_values for _ in fields(cls)]).map(
        lambda values: cls(*values)
    )


def _module_wire_classes(module):
    return [
        obj
        for obj in vars(module).values()
        if is_dataclass(obj)
        and isinstance(obj, type)
        and obj.__module__ == module.__name__
    ]


# ---------------------------------------------------------------------------
# completeness gate
# ---------------------------------------------------------------------------
def test_every_wire_dataclass_is_registered():
    registered = set(registered_types())
    for module in (wire_module, messages_module):
        for cls in _module_wire_classes(module):
            assert cls in registered, (
                f"{cls.__name__} is a wire dataclass but has no codec "
                "registration (P205 should also be failing)"
            )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_registered_types_round_trip(data):
    """Every registered dataclass survives encode -> decode exactly."""
    for cls in registered_types():
        instance = data.draw(_instance_strategy(cls), label=cls.__name__)
        assert decode_frame(encode_frame(instance)) == instance


@settings(max_examples=100, deadline=None)
@given(value=_wire_values)
def test_plain_values_round_trip(value):
    assert decode_frame(encode_frame(value)) == value


def test_set_encoding_is_canonical():
    a = encode_frame(frozenset([1, 2, 3]))
    b = encode_frame(frozenset([3, 1, 2]))
    assert a == b
    assert decode_frame(a) == frozenset([1, 2, 3])


def test_frame_size_matches_encoding():
    envelope = WireEnvelope(
        sender="s0", receiver="s1", kind="hb", size=1, payload=[1, 2.5, "x"]
    )
    assert frame_size(envelope) == len(encode_frame(envelope))


# ---------------------------------------------------------------------------
# strict rejection
# ---------------------------------------------------------------------------
def test_unregistered_dataclass_rejected():
    @dataclass(frozen=True)
    class NotOnTheWire:
        x: int

    with pytest.raises(UnknownTypeError):
        encode_frame(NotOnTheWire(x=1))


def test_unencodable_object_rejected():
    with pytest.raises(UnknownTypeError):
        encode_frame(object())


def test_truncated_frames_rejected():
    frame = encode_frame([1, 2, 3])
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            decode_frame(frame[:cut])


def test_trailing_bytes_rejected():
    frame = encode_frame("hello")
    with pytest.raises(CodecError):
        decode_frame(frame + b"\x00")


def test_version_skew_rejected():
    frame = bytearray(encode_frame(42))
    frame[4] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="version"):
        decode_frame(bytes(frame))


def test_unknown_type_id_rejected():
    # hand-build a dataclass frame with an id beyond the registry
    body = bytearray([WIRE_VERSION, 13])  # _T_DATACLASS
    body += (60_000).to_bytes(2, "big")
    body += bytes([0])
    frame = len(body).to_bytes(4, "big") + bytes(body)
    with pytest.raises(UnknownTypeError):
        decode_frame(frame)


def test_field_count_mismatch_rejected():
    frame = bytearray(encode_frame(WireEnvelope("a", "b", "k", 1, None)))
    n_fields = len(dataclasses.fields(WireEnvelope))
    # the field-count byte follows tag(1)+type_id(2) inside the body
    index = frame.index(bytes([13])) + 3
    assert frame[index] == n_fields
    frame[index] = n_fields + 1
    with pytest.raises(CodecError):
        decode_frame(bytes(frame))


def test_oversized_length_prefix_rejected():
    frame = (MAX_FRAME + 1).to_bytes(4, "big") + b"\x01"
    with pytest.raises(CodecError):
        decode_frame(frame)
    with pytest.raises(CodecError):
        split_frames(bytearray(frame))


# ---------------------------------------------------------------------------
# stream reassembly
# ---------------------------------------------------------------------------
def test_split_frames_keeps_partial_tail():
    f1, f2 = encode_frame("one"), encode_frame([2, 2])
    buffer = bytearray(f1 + f2[:3])
    frames = split_frames(buffer)
    assert frames == [f1]
    assert bytes(buffer) == f2[:3]


def test_frame_decoder_across_chunks():
    decoder = FrameDecoder()
    stream = b"".join(encode_frame(v) for v in ("a", {"k": 1}, [True, None]))
    out = []
    for i in range(0, len(stream), 7):
        out.extend(decoder.feed(stream[i : i + 7]))
    assert out == ["a", {"k": 1}, [True, None]]
    assert decoder.pending_bytes == 0
