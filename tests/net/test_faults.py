"""The fault-injecting transport: severing, delay, chaos knobs, WAN
profiles, the fault plane, and the runtime control channel."""

import asyncio
import json

from repro.net.codec import encode_frame
from repro.net.faults import (
    WAN_PROFILES,
    FaultControlServer,
    FaultPlane,
    FaultyTransport,
    wan_profile,
)
from repro.net.transport import UdpLoopbackTransport, create_transport


def _run(coro):
    return asyncio.run(coro)


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


async def _pair(seed=0):
    """Two faulty UDP transports wired to each other."""
    ta = FaultyTransport(UdpLoopbackTransport("a"), seed=seed)
    tb = FaultyTransport(UdpLoopbackTransport("b"), seed=seed)
    await ta.start()
    await tb.start()
    ta.set_peer("b", *tb.address)
    tb.set_peer("a", *ta.address)
    return ta, tb


def test_passthrough_with_no_faults():
    async def scenario():
        ta, tb = await _pair()
        got = []
        tb.on_frame = got.append
        ta.send("b", b"hello")
        await _wait_for(lambda: got)
        await ta.close()
        await tb.close()
        assert got == [b"hello"]
        assert ta.faults.as_dict() == {
            "severed_drops": 0,
            "in_flight_killed": 0,
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "delayed": 0,
        }

    _run(scenario())


def test_registry_has_faulty_backends():
    for name in ("faulty-tcp", "faulty-udp"):
        transport = create_transport(name, "x")
        assert isinstance(transport, FaultyTransport)


def test_sever_is_directional():
    async def scenario():
        ta, tb = await _pair()
        got_a, got_b = [], []
        ta.on_frame = got_a.append
        tb.on_frame = got_b.append
        ta.sever("b")
        ta.send("b", b"lost")
        tb.send("a", b"heard")  # the reverse direction still works
        await _wait_for(lambda: got_a)
        assert got_a == [b"heard"]
        assert got_b == []
        assert ta.faults.severed_drops == 1
        ta.restore("b")
        ta.send("b", b"healed")
        await _wait_for(lambda: got_b)
        await ta.close()
        await tb.close()
        assert got_b == [b"healed"]

    _run(scenario())


def test_sever_tags_are_independent_layers():
    async def scenario():
        ta, tb = await _pair()
        ta.sever("b", tag="partition")
        ta.sever("b", tag="cut")
        ta.restore("b", tag="partition")
        # the cut layer still holds the link down
        got = []
        tb.on_frame = got.append
        ta.send("b", b"x")
        await asyncio.sleep(0.05)
        assert got == []
        ta.restore("b", tag="cut")
        ta.send("b", b"y")
        await _wait_for(lambda: got)
        await ta.close()
        await tb.close()

    _run(scenario())


def test_same_seed_same_drop_decisions():
    """The per-link RNG is a pure function of (seed, src, dst): two runs
    with the same seed drop exactly the same frame indices."""

    def decisions(seed):
        transport = FaultyTransport(UdpLoopbackTransport("a"), seed=seed)
        transport.set_drop("b", 0.5)
        link = transport._link("b")
        return [bool(link.rng.random(4)[0] < 0.5) for _ in range(64)]

    assert decisions(7) == decisions(7)
    assert decisions(7) != decisions(8)


def test_delay_holds_frames_and_duplicate_copies():
    async def scenario():
        ta, tb = await _pair()
        got = []
        tb.on_frame = got.append
        ta.set_extra_delay("b", 0.05)
        ta.set_duplication(1.0)
        loop = asyncio.get_running_loop()
        started = loop.time()
        frame = encode_frame("slow")  # real framing so the batch splits
        ta.send("b", frame)
        await _wait_for(lambda: len(got) == 2)
        elapsed = loop.time() - started
        await ta.close()
        await tb.close()
        assert got == [frame, frame]
        assert elapsed >= 0.04
        assert ta.faults.delayed == 1
        assert ta.faults.duplicated == 1

    _run(scenario())


def test_sever_kills_in_flight_frames():
    async def scenario():
        ta, tb = await _pair()
        got = []
        tb.on_frame = got.append
        ta.set_extra_delay("b", 0.05)
        ta.send("b", b"doomed")
        ta.sever("b")  # cut while the frame is still in flight
        await asyncio.sleep(0.15)
        await ta.close()
        await tb.close()
        assert got == []
        assert ta.faults.in_flight_killed == 1

    _run(scenario())


def test_plane_partition_uses_implicit_residual_component():
    """Unmentioned nodes share one implicit component — mirroring the
    simulated topology — rather than each being isolated alone."""
    transports = {n: FaultyTransport(UdpLoopbackTransport(n)) for n in "abcd"}
    plane = FaultPlane()
    for node, transport in transports.items():
        plane.adopt(node, transport)
    plane.partition(["a"])  # b, c, d land in the implicit component

    def severed(src, dst):
        link = transports[src]._links.get(dst)
        return link is not None and link.severed

    assert severed("a", "b") and severed("b", "a")
    assert not severed("b", "c") and not severed("c", "d")
    plane.heal_partition()
    assert not severed("a", "b")


def test_plane_heal_partition_leaves_cut_layer_alone():
    transports = {n: FaultyTransport(UdpLoopbackTransport(n)) for n in "ab"}
    plane = FaultPlane()
    for node, transport in transports.items():
        plane.adopt(node, transport)
    plane.cut_link("a", "b", symmetric=False)
    plane.partition(["a"], ["b"])
    plane.heal_partition()
    assert transports["a"]._link("b").severed  # the cut survives
    assert not transports["b"]._link("a").severed
    plane.restore_link("a", "b", symmetric=False)
    assert not transports["a"]._link("b").severed


def test_wan_profile_installs_latency_matrix():
    transports = {n: FaultyTransport(UdpLoopbackTransport(n)) for n in ("s0", "s1", "s2")}
    plane = FaultPlane()
    for node, transport in transports.items():
        plane.adopt(node, transport)
    profile = wan_profile("us-eu")
    assignment = profile.install(plane)
    # round-robin over sorted names: s0->us, s1->eu, s2->us
    assert assignment == {"s0": "us", "s1": "eu", "s2": "us"}
    intra = transports["s0"]._link("s2")
    inter = transports["s0"]._link("s1")
    assert intra.base_delay == profile.intra[0]
    assert inter.base_delay == profile.inter["eu-us"][0]
    assert profile.settings_factor > 1.0
    assert set(WAN_PROFILES) == {"us-eu", "global"}


def test_control_channel_applies_and_rejects_commands():
    async def scenario():
        ta, tb = await _pair()
        plane = FaultPlane()
        plane.adopt("a", ta)
        plane.adopt("b", tb)
        control = FaultControlServer(plane)
        host, port = await control.start()
        reader, writer = await asyncio.open_connection(host, port)

        async def command(obj):
            writer.write(json.dumps(obj).encode() + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        assert (await command({"op": "cut_link", "src": "a", "dst": "b"}))["ok"]
        assert ta._link("b").severed and tb._link("a").severed
        reply = await command({"op": "no-such-op"})
        assert not reply["ok"] and "unknown fault op" in reply["error"]
        assert (await command({"op": "clear_all"}))["ok"]
        assert not ta._link("b").severed
        writer.close()
        await control.close()
        await ta.close()
        await tb.close()

    _run(scenario())
