"""End-to-end live clusters: the unchanged protocol stack over sockets.

These run real wall-clock seconds (the live runtime paces the simulator
one second per second), so the workloads are kept short; the CI
live-smoke job runs the full-size scripted run.
"""

import pytest

from repro.metrics.session_audit import propagation_byte_calibration
from repro.net.cluster import LiveClusterOptions, run_live_cluster


@pytest.fixture(scope="module")
def failover_report():
    """One shared kill-primary run (several wall seconds of streaming)."""
    return run_live_cluster(
        LiveClusterOptions(
            nodes=3,
            loopback=True,
            requests=80,
            kill_primary=True,
            update_interval=0.02,
            settle=1.5,
        )
    )


def test_failover_run_is_clean(failover_report):
    assert failover_report["clean"], failover_report["reasons"]
    session = failover_report["session"]
    assert session["started"]
    assert session["responses_received"] > 0
    assert session["updates_sent"] == 80


def test_failover_loses_no_acknowledged_updates(failover_report):
    session = failover_report["session"]
    assert session["lost_acked_updates"] == 0
    assert session["unacked_sends"] == 0
    assert failover_report["multi_primary_time"] == 0.0


def test_failover_kills_and_takes_over(failover_report):
    assert failover_report["killed"] is not None
    assert failover_report["takeover_seconds"] is not None
    assert failover_report["takeover_seconds"] < 3.0


def test_live_traffic_crosses_real_sockets(failover_report):
    transport = failover_report["transport"]
    assert sum(t["frames_sent"] for t in transport.values()) > 100
    assert sum(t["bytes_received"] for t in transport.values()) > 1000
    assert failover_report["frames_rejected"] == 0


def test_live_byte_accounting_uses_actual_sizes(failover_report):
    calibration = failover_report["bytes"]
    assert calibration["actual_bytes_sent"] > 0
    assert calibration["estimated_bytes_sent"] > 0
    # the real codec costs more than the abstract unit estimates, and the
    # live counters must reflect that (estimate == actual would mean the
    # measure_frame hook never ran)
    assert calibration["actual_bytes_sent"] != calibration["estimated_bytes_sent"]
    assert calibration["actual_over_estimate"] > 0


def test_sim_mode_calibration_ratio_is_one():
    """In pure simulation both counter families advance by the estimate."""
    from repro.core import AvailabilityPolicy, ServiceCluster
    from repro.services import VodApplication, build_movie

    movie = build_movie("demo", duration_seconds=30, frame_rate=24)
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"demo": VodApplication({"demo": movie})},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1),
        seed=7,
    )
    cluster.settle()
    client = cluster.add_client("c")
    handle = client.start_session("demo")
    client.send_update(handle, {"op": "rate", "value": 30.0})
    cluster.run(3.0)
    calibration = propagation_byte_calibration(cluster)
    assert calibration["estimated_bytes_sent"] > 0
    assert calibration["actual_over_estimate"] == 1.0
