"""The live runtime adapter: pacing, ingress, and local/remote split."""

import asyncio

from repro.net.codec import WireEnvelope, encode_frame
from repro.net.runtime import LiveNetwork, LiveRuntime
from repro.net.transport import UdpLoopbackTransport
from repro.sim.engine import Simulator


def _run(coro):
    return asyncio.run(coro)


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


def test_next_event_time_skips_cancelled():
    sim = Simulator()
    early = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.next_event_time() == 1.0
    early.cancel()
    assert sim.next_event_time() == 2.0


def test_runtime_paces_sim_against_wall_clock():
    async def scenario():
        sim = Simulator()
        fired = []
        sim.schedule(0.15, lambda: fired.append(sim.now))
        runtime = LiveRuntime(sim, max_tick=0.02)
        loop = asyncio.get_running_loop()
        started = loop.time()
        await runtime.run(0.3)
        elapsed = loop.time() - started
        assert fired == [0.15]
        assert sim.now == 0.3
        # wall time tracks sim time (loosely: CI boxes stall)
        assert 0.25 <= elapsed < 3.0

    _run(scenario())


def test_runtime_stop_interrupts_run():
    async def scenario():
        sim = Simulator()
        runtime = LiveRuntime(sim, max_tick=0.02)

        async def stopper():
            await asyncio.sleep(0.05)
            runtime.stop()

        loop = asyncio.get_running_loop()
        started = loop.time()
        await asyncio.gather(runtime.run(30.0), stopper())
        assert loop.time() - started < 5.0

    _run(scenario())


def test_live_network_local_and_remote_paths():
    async def scenario():
        sim = Simulator()
        runtime = LiveRuntime(sim, max_tick=0.02)
        ta, tb = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        await ta.start()
        await tb.start()
        na = LiveNetwork(sim, ta, wake=runtime.wake)
        nb = LiveNetwork(sim, tb, wake=runtime.wake)
        ta.set_peer("b", *tb.address)
        tb.set_peer("a", *ta.address)
        got_a, got_b = [], []
        na.attach("a", lambda m: got_a.append(m), lambda: True)
        na.attach("a2", lambda m: got_a.append(m), lambda: True)
        nb.attach("b", lambda m: got_b.append(m), lambda: True)

        def kick():
            na.send("a", "a2", {"local": True}, kind="loc", size=3)
            na.send("a", "b", {"remote": True}, kind="rem", size=7)

        sim.schedule(0.01, kick)
        task = asyncio.get_running_loop().create_task(runtime.run(10.0))
        await _wait_for(lambda: got_a and got_b)
        runtime.stop()
        await task
        await ta.close()
        await tb.close()
        # local hop never touched the socket
        assert got_a[0].payload == {"local": True}
        assert ta.stats.frames_sent == 1
        # remote hop crossed it, with actual bytes accounted by kind
        assert got_b[0].payload == {"remote": True}
        assert got_b[0].kind == "rem"
        assert na.actual_bytes_sent["rem"] == ta.stats.bytes_sent
        assert nb.actual_bytes_received["rem"] == tb.stats.bytes_received
        # sender-side abstract accounting mirrors the parent's
        assert na.total_sent == 2

    _run(scenario())


def test_live_network_rejects_garbage_frames():
    async def scenario():
        sim = Simulator()
        transport = UdpLoopbackTransport("a")
        await transport.start()
        network = LiveNetwork(sim, transport)
        network._ingress(b"\x00\x00\x00\x01\x63")  # bad version
        network._ingress(encode_frame("not an envelope"))
        # ingress only schedules; decoding (and rejection) happens
        # inside the event loop
        sim.run_until(0.0)
        await transport.close()
        assert network.frames_rejected == 2

    _run(scenario())


def test_measure_frame_reports_actual_bytes():
    async def scenario():
        sim = Simulator()
        transport = UdpLoopbackTransport("a")
        await transport.start()
        network = LiveNetwork(sim, transport)
        payload = WireEnvelope("a", "b", "k", 1, ["data"] * 10)
        assert network.measure_frame(payload) == len(encode_frame(payload))
        await transport.close()

    _run(scenario())
