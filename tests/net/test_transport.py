"""The asyncio transports: delivery, backpressure, and rejection."""

import asyncio

import pytest

from repro.net.codec import encode_frame
from repro.net.transport import (
    UDP_MAX_FRAME,
    TcpMeshTransport,
    UdpLoopbackTransport,
)


def _run(coro):
    return asyncio.run(coro)


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


# ---------------------------------------------------------------------------
# TCP mesh
# ---------------------------------------------------------------------------
def test_tcp_round_trip_both_directions():
    async def scenario():
        a, b = TcpMeshTransport("a"), TcpMeshTransport("b")
        got_a, got_b = [], []
        a.on_frame = got_a.append
        b.on_frame = got_b.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        b.set_peer("a", *a.address)
        frame_ab = encode_frame(["a", "to", "b"])
        frame_ba = encode_frame({"b": "to a"})
        a.send("b", frame_ab)
        b.send("a", frame_ba)
        await _wait_for(lambda: got_a and got_b)
        await a.close()
        await b.close()
        assert got_b == [frame_ab]
        assert got_a == [frame_ba]
        assert a.stats.frames_sent == 1 and a.stats.bytes_sent == len(frame_ab)
        assert b.stats.frames_received == 1

    _run(scenario())


def test_tcp_many_frames_keep_order():
    async def scenario():
        a, b = TcpMeshTransport("a"), TcpMeshTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        frames = [encode_frame(i) for i in range(200)]
        for frame in frames:
            a.send("b", frame)
        await _wait_for(lambda: len(got) == len(frames))
        await a.close()
        await b.close()
        assert got == frames

    _run(scenario())


def test_tcp_unroutable_peer_counted():
    async def scenario():
        a = TcpMeshTransport("a")
        await a.start()
        a.send("ghost", encode_frame(1))
        await a.close()
        assert a.stats.dropped_unroutable == 1

    _run(scenario())


def test_tcp_queue_drops_oldest_when_full():
    async def scenario():
        # peer address points nowhere reachable: frames pile up in the queue
        a = TcpMeshTransport("a", queue_limit=5, backoff_base=10.0)
        await a.start()
        a.set_peer("b", "127.0.0.1", 1)  # connect will fail
        frames = [encode_frame(i) for i in range(8)]
        for frame in frames:
            a.send("b", frame)
        channel = a._peers["b"]
        kept = list(channel.queue)
        await a.close()
        assert a.stats.dropped_oldest == 3
        assert a.stats.dropped_by_peer == {"b": 3}
        assert kept == frames[3:]  # oldest dropped, newest kept

    _run(scenario())


def test_tcp_reconnects_after_peer_restart():
    async def scenario():
        a, b = TcpMeshTransport("a", backoff_base=0.01, backoff_cap=0.05), None
        got = []
        await a.start()
        b = TcpMeshTransport("b")
        b.on_frame = got.append
        host, port = await b.start()
        a.set_peer("b", host, port)
        a.send("b", encode_frame("first"))
        await _wait_for(lambda: len(got) == 1)
        await b.close()  # peer goes away
        a.send("b", encode_frame("lost or queued"))
        await asyncio.sleep(0.05)
        # peer comes back on the same port
        b2 = TcpMeshTransport("b")
        got2 = []
        b2.on_frame = got2.append
        await b2.start(host, port)
        # frames written into the dying socket are lost until the pump
        # notices; the protocol layer retransmits, so the test does too
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        while not got2 and loop.time() < deadline:
            a.send("b", encode_frame("after restart"))
            await asyncio.sleep(0.02)
        await a.close()
        await b2.close()
        assert got2
        assert all(frame == encode_frame("after restart") for frame in got2)

    _run(scenario())


def test_tcp_address_before_start_raises():
    transport = TcpMeshTransport("a")
    with pytest.raises(RuntimeError):
        transport.address


# ---------------------------------------------------------------------------
# UDP loopback
# ---------------------------------------------------------------------------
def test_udp_round_trip():
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        frame = encode_frame(("x", 1))
        a.send("b", frame)
        await _wait_for(lambda: got)
        await a.close()
        await b.close()
        assert got == [frame]
        assert b.stats.bytes_received == len(frame)

    _run(scenario())


def test_udp_oversize_frame_dropped():
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        a.send("b", encode_frame("x" * (UDP_MAX_FRAME + 1)))
        await asyncio.sleep(0.02)
        await a.close()
        await b.close()
        assert a.stats.dropped_oversize == 1
        assert a.stats.frames_sent == 0
        assert b.stats.frames_received == 0

    _run(scenario())


def test_udp_unroutable_peer_counted():
    async def scenario():
        a = UdpLoopbackTransport("a")
        await a.start()
        a.send("ghost", encode_frame(1))
        await a.close()
        assert a.stats.dropped_unroutable == 1

    _run(scenario())
