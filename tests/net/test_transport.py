"""The asyncio transports: delivery, coalescing, backpressure, rejection."""

import asyncio

import pytest

from repro.net.codec import encode_frame
from repro.net.transport import (
    UDP_MAX_FRAME,
    TcpMeshTransport,
    UdpLoopbackTransport,
    available_transports,
    create_transport,
)


def _run(coro):
    return asyncio.run(coro)


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


# ---------------------------------------------------------------------------
# TCP mesh
# ---------------------------------------------------------------------------
def test_tcp_round_trip_both_directions():
    async def scenario():
        a, b = TcpMeshTransport("a"), TcpMeshTransport("b")
        got_a, got_b = [], []
        a.on_frame = got_a.append
        b.on_frame = got_b.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        b.set_peer("a", *a.address)
        frame_ab = encode_frame(["a", "to", "b"])
        frame_ba = encode_frame({"b": "to a"})
        a.send("b", frame_ab)
        b.send("a", frame_ba)
        await _wait_for(lambda: got_a and got_b)
        await a.close()
        await b.close()
        assert got_b == [frame_ab]
        assert got_a == [frame_ba]
        assert a.stats.frames_sent == 1 and a.stats.bytes_sent == len(frame_ab)
        assert b.stats.frames_received == 1

    _run(scenario())


def test_tcp_many_frames_keep_order():
    async def scenario():
        a, b = TcpMeshTransport("a"), TcpMeshTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        frames = [encode_frame(i) for i in range(200)]
        for frame in frames:
            a.send("b", frame)
        await _wait_for(lambda: len(got) == len(frames))
        await a.close()
        await b.close()
        assert got == frames

    _run(scenario())


def test_tcp_unroutable_peer_counted():
    async def scenario():
        a = TcpMeshTransport("a")
        await a.start()
        a.send("ghost", encode_frame(1))
        await a.close()
        assert a.stats.dropped_unroutable == 1

    _run(scenario())


def test_tcp_queue_drops_oldest_when_full():
    async def scenario():
        # peer address points nowhere reachable: frames pile up in the queue
        a = TcpMeshTransport("a", queue_limit=5, backoff_base=10.0)
        await a.start()
        a.set_peer("b", "127.0.0.1", 1)  # connect will fail
        frames = [encode_frame(i) for i in range(8)]
        for frame in frames:
            a.send("b", frame)
        channel = a._peers["b"]
        kept = list(channel.queue)
        await a.close()
        assert a.stats.dropped_oldest == 3
        assert a.stats.dropped_by_peer == {"b": 3}
        assert kept == frames[3:]  # oldest dropped, newest kept

    _run(scenario())


def test_tcp_reconnects_after_peer_restart():
    async def scenario():
        a, b = TcpMeshTransport("a", backoff_base=0.01, backoff_cap=0.05), None
        got = []
        await a.start()
        b = TcpMeshTransport("b")
        b.on_frame = got.append
        host, port = await b.start()
        a.set_peer("b", host, port)
        a.send("b", encode_frame("first"))
        await _wait_for(lambda: len(got) == 1)
        await b.close()  # peer goes away
        a.send("b", encode_frame("lost or queued"))
        await asyncio.sleep(0.05)
        # peer comes back on the same port
        b2 = TcpMeshTransport("b")
        got2 = []
        b2.on_frame = got2.append
        await b2.start(host, port)
        # frames written into the dying socket are lost until the pump
        # notices; the protocol layer retransmits, so the test does too
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        while not got2 and loop.time() < deadline:
            a.send("b", encode_frame("after restart"))
            await asyncio.sleep(0.02)
        await a.close()
        await b2.close()
        assert got2
        assert all(frame == encode_frame("after restart") for frame in got2)

    _run(scenario())


def test_tcp_address_before_start_raises():
    transport = TcpMeshTransport("a")
    with pytest.raises(RuntimeError):
        transport.address


# ---------------------------------------------------------------------------
# TCP writer coalescing and reconnect hygiene (scripted connections)
# ---------------------------------------------------------------------------
class _ScriptedWriter:
    """A StreamWriter stand-in that can fail specific drain() calls."""

    def __init__(self, fail_on_drain=()):
        self.chunks = []
        self.drain_calls = 0
        self._fail_on = set(fail_on_drain)

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        self.drain_calls += 1
        if self.drain_calls in self._fail_on:
            raise ConnectionResetError("scripted drop")

    def close(self):
        pass


def test_tcp_burst_coalesces_into_one_write_and_drain(monkeypatch):
    """A burst queued before the writer wakes must go out as ONE write
    and ONE drain, not one flow-control round-trip per frame."""
    writer = _ScriptedWriter()

    async def fake_open(host, port):
        return (None, writer)

    monkeypatch.setattr(asyncio, "open_connection", fake_open)

    async def scenario():
        a = TcpMeshTransport("a")
        a.set_peer("b", "127.0.0.1", 9)
        frames = [encode_frame(i) for i in range(64)]
        for frame in frames:
            a.send("b", frame)
        await _wait_for(lambda: a.stats.frames_sent == len(frames))
        assert a.stats.writes <= 2  # the whole burst, coalesced
        assert writer.drain_calls == a.stats.writes
        assert b"".join(writer.chunks) == b"".join(frames)
        assert a.stats.bytes_sent == sum(len(f) for f in frames)
        await a.close()

    _run(scenario())


def test_tcp_backoff_resets_and_requeues_in_flight_batch(monkeypatch):
    """Reconnect hygiene, pinned: (1) the backoff attempt counter resets
    after a successful connect, so a later drop retries from the base
    delay; (2) a batch in flight when the connection dies is re-queued
    and re-sent — neither silently dropped nor double-counted."""
    writer1 = _ScriptedWriter(fail_on_drain={2})  # dies on the second batch
    writer2 = _ScriptedWriter()
    script = iter([None, None, None, writer1, None, writer2])
    delays = []
    real_sleep = asyncio.sleep

    async def fake_open(host, port):
        item = next(script)
        if item is None:
            raise OSError("connection refused")
        return (None, item)

    async def recording_sleep(delay):
        delays.append(delay)
        await real_sleep(0)

    monkeypatch.setattr(asyncio, "open_connection", fake_open)
    monkeypatch.setattr(asyncio, "sleep", recording_sleep)

    async def settle(predicate):
        for _ in range(10_000):
            if predicate():
                return
            await real_sleep(0)
        raise AssertionError("condition not reached")

    async def scenario():
        a = TcpMeshTransport("a", backoff_base=0.01, backoff_cap=2.0)
        a.set_peer("b", "127.0.0.1", 9)
        first = encode_frame("first")
        a.send("b", first)
        await settle(lambda: a.stats.frames_sent == 1)
        # three refused connects backed off exponentially before success
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert a.stats.connect_failures == 3
        assert a.stats.reconnects == 1
        second = encode_frame("second")
        a.send("b", second)  # writer1's drain dies with this in flight
        await settle(lambda: a.stats.frames_sent == 2)
        # the post-drop reconnect backed off from the BASE delay again:
        # a successful connect reset the attempt counter (0.08 here would
        # mean the pre-success failures still counted)
        assert delays[3:] == [0.01]
        assert a.stats.connect_failures == 4
        assert a.stats.reconnects == 2
        # the in-flight frame was re-sent on the new connection, once
        assert writer2.chunks == [second]
        assert a.stats.frames_sent == 2  # not double-counted
        assert a.stats.bytes_sent == len(first) + len(second)
        await a.close()

    _run(scenario())


def test_tcp_multiple_consecutive_losses_requeue_and_reset_backoff(monkeypatch):
    """Reconnect hygiene across SEVERAL consecutive connection losses:
    every cycle re-queues its in-flight batch in order and restarts the
    backoff from the base delay (a single-loss test cannot tell a
    correctly reset counter from one that was simply never incremented
    twice)."""
    writer1 = _ScriptedWriter(fail_on_drain={2})  # dies on its second batch
    writer2 = _ScriptedWriter(fail_on_drain={2})  # ... and so does its successor
    writer3 = _ScriptedWriter()
    script = iter([writer1, None, writer2, None, None, writer3])
    delays = []
    real_sleep = asyncio.sleep

    async def fake_open(host, port):
        item = next(script)
        if item is None:
            raise OSError("connection refused")
        return (None, item)

    async def recording_sleep(delay):
        delays.append(delay)
        await real_sleep(0)

    monkeypatch.setattr(asyncio, "open_connection", fake_open)
    monkeypatch.setattr(asyncio, "sleep", recording_sleep)

    async def settle(predicate):
        for _ in range(10_000):
            if predicate():
                return
            await real_sleep(0)
        raise AssertionError("condition not reached")

    async def scenario():
        a = TcpMeshTransport("a", backoff_base=0.01, backoff_cap=2.0)
        a.set_peer("b", "127.0.0.1", 9)
        f1, f2, f3, f4 = (encode_frame(f"frame-{i}") for i in range(4))
        a.send("b", f1)
        await settle(lambda: a.stats.frames_sent == 1)
        # cycle 1: a two-frame batch dies in flight on writer1
        a.send("b", f2)
        a.send("b", f3)
        await settle(lambda: a.stats.frames_sent == 3)
        # one refused connect, backed off from the BASE delay (reset
        # after writer1's successful connect)
        assert delays == [0.01]
        # the whole batch was re-queued in order and re-sent as one write
        assert writer2.chunks == [f2 + f3]
        # cycle 2: a single-frame batch dies in flight on writer2
        a.send("b", f4)
        await settle(lambda: a.stats.frames_sent == 4)
        # two refused connects this cycle — and again from the base
        # delay, not continuing cycle 1's progression
        assert delays[1:] == [0.01, 0.02]
        assert writer3.chunks == [f4]
        assert a.stats.reconnects == 2
        assert a.stats.connect_failures == 3
        assert a.stats.requeued_batches == 2
        assert a.stats.requeued_frames == 3  # [f2, f3] then [f4]
        assert a.stats.frames_sent == 4  # never double-counted
        # the per-peer snapshot attributes all of it to peer "b"
        snapshot = a.stats_snapshot()
        peer = snapshot["peers"]["b"]
        assert peer["reconnects"] == 2
        assert peer["connect_failures"] == 3
        assert peer["requeued_batches"] == 2
        assert peer["requeued_frames"] == 3
        assert peer["queue_depth"] == 0
        await a.close()

    _run(scenario())


# ---------------------------------------------------------------------------
# UDP loopback
# ---------------------------------------------------------------------------
def test_udp_round_trip():
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        frame = encode_frame(("x", 1))
        a.send("b", frame)
        await _wait_for(lambda: got)
        await a.close()
        await b.close()
        assert got == [frame]
        assert b.stats.bytes_received == len(frame)

    _run(scenario())


def test_udp_oversize_frame_sent_standalone():
    # A frame above the coalescing bound goes out in its own datagram
    # (loopback's 64kB MTU carries it) instead of corrupting a batch.
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        big = encode_frame("x" * (UDP_MAX_FRAME + 1))
        a.send("b", big)
        await _wait_for(lambda: got)
        await a.close()
        await b.close()
        assert got == [big]
        assert a.stats.oversize_frames == 1
        assert a.stats.dropped_oversize == 0
        assert a.stats.frames_sent == 1
        assert a.stats.writes == 1
        assert b.stats.frames_received == 1

    _run(scenario())


def test_udp_oversize_flushes_pending_batch_first():
    # Frames already coalescing for the peer must go out *before* the
    # oversize frame so send order is preserved on the wire.
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        small = [encode_frame(("s", i)) for i in range(3)]
        big = encode_frame("y" * (UDP_MAX_FRAME + 1))
        for frame in small:
            a.send("b", frame)  # queued for this turn's coalesced flush
        a.send("b", big)  # must flush the batch, then go standalone
        await _wait_for(lambda: len(got) == 4)
        await a.close()
        await b.close()
        assert got == small + [big]
        assert a.stats.oversize_frames == 1
        assert a.stats.frames_sent == 4
        assert a.stats.writes == 2  # one packed datagram + one standalone

    _run(scenario())


def test_udp_frame_beyond_loopback_mtu_counted_dropped():
    # ~65507 bytes is the absolute UDP payload ceiling; past it the
    # kernel refuses the datagram and asyncio reports EMSGSIZE through
    # error_received, which the transport counts as an oversize drop.
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        a.send("b", encode_frame("z" * 70_000))
        await asyncio.sleep(0.05)
        await a.close()
        await b.close()
        assert got == []
        assert a.stats.oversize_frames == 1  # we did attempt the send
        assert a.stats.dropped_oversize == 1  # ... and the kernel refused
        assert b.stats.frames_received == 0

    _run(scenario())


def test_udp_unroutable_peer_counted():
    async def scenario():
        a = UdpLoopbackTransport("a")
        await a.start()
        a.send("ghost", encode_frame(1))
        await a.close()
        assert a.stats.dropped_unroutable == 1

    _run(scenario())


def test_udp_burst_packs_one_datagram_and_receiver_splits_it():
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        frames = [encode_frame(("burst", i)) for i in range(10)]
        for frame in frames:
            a.send("b", frame)
        await _wait_for(lambda: len(got) == len(frames))
        await a.close()
        await b.close()
        assert got == frames  # split back into individual frames, in order
        assert a.stats.writes == 1  # ...but shipped as one datagram
        assert a.stats.frames_sent == len(frames)
        assert b.stats.frames_received == len(frames)
        assert b.stats.bytes_received == sum(len(f) for f in frames)

    _run(scenario())


def test_udp_coalescing_respects_datagram_size_bound():
    async def scenario():
        a, b = UdpLoopbackTransport("a"), UdpLoopbackTransport("b")
        got = []
        b.on_frame = got.append
        await a.start()
        await b.start()
        a.set_peer("b", *b.address)
        big = encode_frame("x" * (UDP_MAX_FRAME // 2))
        a.send("b", big)
        a.send("b", big)  # would overflow one datagram together
        await _wait_for(lambda: len(got) == 2)
        await a.close()
        await b.close()
        assert a.stats.writes == 2
        assert a.stats.dropped_oversize == 0
        assert got == [big, big]

    _run(scenario())


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_transport_registry_builds_backends_by_name():
    assert "tcp" in available_transports()
    assert "udp" in available_transports()
    assert isinstance(create_transport("tcp", "n0"), TcpMeshTransport)
    assert isinstance(create_transport("udp", "n0"), UdpLoopbackTransport)
    with pytest.raises(ValueError, match="unknown transport"):
        create_transport("carrier-pigeon", "n0")
