"""Unit tests for content generators and an end-to-end test per service."""

import numpy as np
import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services.content import (
    build_corpus,
    build_movie,
    build_topic,
)
from repro.services.education import EducationApplication
from repro.services.search import SearchApplication
from repro.services.vod import VodApplication
from repro.services.workload import (
    SearcherWorkload,
    StudentWorkload,
    VodViewerWorkload,
)


class TestContentGenerators:
    def test_movie_frame_count(self):
        movie = build_movie("m", duration_seconds=10, frame_rate=24)
        assert movie.n_frames == 240
        assert movie.duration == pytest.approx(10.0)

    def test_movie_frame_classes_cycle(self):
        movie = build_movie("m", duration_seconds=1, frame_rate=24)
        assert movie.frame_class(0) == "I"
        assert movie.frame_class(12) == "I"
        assert movie.frame_class(1) == "B"

    def test_topic_structure(self):
        topic = build_topic("t", n_objects=9, seed=1)
        assert len(topic.objects) == 9
        kinds = {o.kind for o in topic.objects}
        assert kinds == {"notes", "animation", "quiz"}
        for quiz in topic.quizzes():
            assert quiz.answer is not None

    def test_topic_deterministic(self):
        assert build_topic("t", seed=4) == build_topic("t", seed=4)

    def test_corpus_matching(self):
        corpus = build_corpus("c", n_documents=50, seed=2)
        hits = corpus.matching({"replication"})
        for doc_id in hits:
            assert "replication" in corpus.documents[doc_id].terms

    def test_corpus_refinement_subset(self):
        corpus = build_corpus("c", n_documents=80, seed=2)
        base = corpus.matching({"group"})
        refined = corpus.matching({"view"}, within=base)
        assert set(refined) <= set(base)

    def test_corpus_deterministic(self):
        assert build_corpus("c", seed=9) == build_corpus("c", seed=9)


class TestEducationEndToEnd:
    def test_student_session_over_cluster(self):
        topic = build_topic("t0", n_objects=9, seed=1)
        app = EducationApplication({"t0": topic})
        cluster = ServiceCluster.build(
            n_servers=3, units={"t0": app}, replication=2,
            policy=AvailabilityPolicy(num_backups=1), seed=3,
        )
        cluster.settle()
        client = cluster.add_client("student")
        handle = client.start_session("t0")
        cluster.run(2.0)
        assert handle.started
        client.send_update(handle, {"op": "open", "object": 0})
        cluster.run(1.0)
        assert len(handle.received) == 1
        assert handle.received[0].klass == "object"
        quiz = topic.quizzes()[0]
        client.send_update(
            handle,
            {"op": "answer", "object": quiz.object_id, "answer": quiz.answer},
        )
        cluster.run(1.0)
        assert any(r.klass == "feedback" for r in handle.received)

    def test_student_survives_failover(self):
        topic = build_topic("t0", n_objects=9, seed=1)
        app = EducationApplication({"t0": topic})
        cluster = ServiceCluster.build(
            n_servers=3, units={"t0": app}, replication=3,
            policy=AvailabilityPolicy(num_backups=1), seed=3,
        )
        cluster.settle()
        client = cluster.add_client("student")
        handle = client.start_session("t0")
        cluster.run(2.0)
        quiz = topic.quizzes()[0]
        wrong = (quiz.answer + 1) % 4
        client.send_update(
            handle, {"op": "answer", "object": quiz.object_id, "answer": wrong}
        )
        cluster.run(1.0)
        cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
        cluster.run(4.0)
        # the new primary remembers the raised detail level (grades context)
        client.send_update(handle, {"op": "open", "object": 1})
        cluster.run(2.0)
        opened = [r for r in handle.received if r.klass == "object"]
        assert "extra_detail" in opened[-1].body


class TestSearchEndToEnd:
    def test_refinement_chain_over_cluster_with_failover(self):
        corpus = build_corpus("c0", n_documents=100, seed=4)
        app = SearchApplication({"c0": corpus})
        cluster = ServiceCluster.build(
            n_servers=3, units={"c0": app}, replication=3,
            policy=AvailabilityPolicy(num_backups=1), seed=4,
        )
        cluster.settle()
        client = cluster.add_client("searcher")
        handle = client.start_session("c0")
        cluster.run(2.0)
        client.send_update(handle, {"op": "query", "terms": ["replication"]})
        cluster.run(1.0)
        cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
        cluster.run(4.0)
        # refinement references result set 0 across the failover
        client.send_update(handle, {"op": "refine", "base": 0, "terms": ["group"]})
        cluster.run(2.0)
        results = [r for r in handle.received if r.klass == "result"]
        assert len(results) >= 2
        base = set(results[0].body["doc_ids"])
        refined = set(results[-1].body["doc_ids"])
        assert refined <= base


class TestWorkloads:
    def make_vod_cluster(self):
        movie = build_movie("m0", duration_seconds=120, frame_rate=10)
        app = VodApplication({"m0": movie})
        cluster = ServiceCluster.build(
            n_servers=3, units={"m0": app}, replication=3, seed=5,
        )
        cluster.settle()
        return cluster

    def test_vod_viewer_workload_interacts(self):
        cluster = self.make_vod_cluster()
        client = cluster.add_client("c0")
        handle = client.start_session("m0")
        cluster.run(2.0)
        workload = VodViewerWorkload(
            cluster=cluster,
            client=client,
            handle=handle,
            rng=np.random.default_rng(1),
            skip_interval_mean=2.0,
            movie_frames=1200,
        )
        workload.start()
        cluster.run(20.0)
        assert workload.interactions >= 3
        assert handle.update_counter >= 3

    def test_workload_stop(self):
        cluster = self.make_vod_cluster()
        client = cluster.add_client("c0")
        handle = client.start_session("m0")
        cluster.run(2.0)
        workload = VodViewerWorkload(
            cluster=cluster, client=client, handle=handle,
            rng=np.random.default_rng(1), skip_interval_mean=1.0,
            movie_frames=1200,
        )
        workload.start()
        cluster.run(5.0)
        workload.stop()
        count = workload.interactions
        cluster.run(10.0)
        assert workload.interactions == count

    def test_student_workload(self):
        topic = build_topic("t0", n_objects=9, seed=1)
        app = EducationApplication({"t0": topic})
        cluster = ServiceCluster.build(
            n_servers=2, units={"t0": app}, replication=2, seed=6,
        )
        cluster.settle()
        client = cluster.add_client("c0")
        handle = client.start_session("t0")
        cluster.run(2.0)
        workload = StudentWorkload(
            cluster=cluster, client=client, handle=handle,
            rng=np.random.default_rng(2), n_objects=9, think_time_mean=0.5,
        )
        workload.start()
        cluster.run(15.0)
        assert workload.steps_taken >= 5
        assert any(r.klass == "object" for r in handle.received)

    def test_searcher_workload(self):
        corpus = build_corpus("c0", seed=4)
        app = SearchApplication({"c0": corpus})
        cluster = ServiceCluster.build(
            n_servers=2, units={"c0": app}, replication=2, seed=6,
        )
        cluster.settle()
        client = cluster.add_client("c0")
        handle = client.start_session("c0")
        cluster.run(2.0)
        from repro.services.content import VOCABULARY

        workload = SearcherWorkload(
            cluster=cluster, client=client, handle=handle,
            rng=np.random.default_rng(3), vocabulary=VOCABULARY,
            think_time_mean=0.5,
        )
        workload.start()
        cluster.run(15.0)
        assert workload.queries_sent >= 5
        assert any(r.klass == "result" for r in handle.received)
