"""Unit tests for the distance-education application."""

import pytest

from repro.services.content import build_topic
from repro.services.education import EducationApplication


@pytest.fixture
def app():
    return EducationApplication({"t": build_topic("t", n_objects=12, seed=3)})


@pytest.fixture
def state(app):
    return app.initial_state("t", {})


def step(app, state, update):
    state = app.apply_update(state, update)
    return app.respond_to_update(state, update)


def test_initial_state(state):
    assert state.current_object == 0
    assert state.detail_level == 1
    assert state.grades == ()


def test_open_returns_object(app, state):
    state, responses = step(app, state, {"op": "open", "object": 0})
    assert len(responses) == 1
    assert responses[0].klass == "object"
    assert responses[0].body["object"] == 0
    assert state.visited == (0,)


def test_open_invalid_object_noop(app, state):
    state, responses = step(app, state, {"op": "open", "object": 99})
    assert responses == [] or responses[0].body["object"] == 0


def test_next_advances(app, state):
    state, responses = step(app, state, {"op": "next"})
    assert state.current_object == 1
    assert responses[0].body["object"] == 1


def test_next_clamps_at_end(app, state):
    for _ in range(20):
        state = app.apply_update(state, {"op": "next"})
    assert state.current_object == 11


def test_follow_link(app, state):
    topic = app.topic("t")
    state = app.apply_update(state, {"op": "open", "object": 0})
    state, responses = step(app, state, {"op": "follow", "link": 0})
    expected = topic.objects[0].links[0]
    assert state.current_object == expected


def test_correct_answer_high_grade(app, state):
    quiz = app.topic("t").quizzes()[0]
    state, responses = step(
        app, state, {"op": "answer", "object": quiz.object_id, "answer": quiz.answer}
    )
    assert state.grades == (100,)
    assert state.detail_level == 1
    assert responses[0].klass == "feedback"
    assert responses[0].body["grade"] == 100


def test_wrong_answer_raises_detail_and_remediates(app, state):
    quiz = app.topic("t").quizzes()[0]
    wrong = (quiz.answer + 1) % 4
    state = app.apply_update(state, {"op": "open", "object": quiz.object_id})
    state, responses = step(
        app, state, {"op": "answer", "object": quiz.object_id, "answer": wrong}
    )
    assert state.grades[-1] == 25
    assert state.detail_level == 2
    klasses = [r.klass for r in responses]
    assert "feedback" in klasses and "remedial" in klasses


def test_detail_level_enriches_subsequent_objects(app, state):
    quiz = app.topic("t").quizzes()[0]
    wrong = (quiz.answer + 1) % 4
    state = app.apply_update(
        state, {"op": "answer", "object": quiz.object_id, "answer": wrong}
    )
    state, responses = step(app, state, {"op": "open", "object": 1})
    assert "extra_detail" in responses[0].body


def test_answer_non_quiz_ignored(app, state):
    notes = next(o for o in app.topic("t").objects if o.kind == "notes")
    new_state = app.apply_update(
        state, {"op": "answer", "object": notes.object_id, "answer": 1}
    )
    assert new_state.grades == ()


def test_finished_after_visiting_everything(app, state):
    for object_id in range(12):
        state = app.apply_update(state, {"op": "open", "object": object_id})
    assert app.is_finished(state)


def test_no_streaming(app, state):
    assert app.response_interval(state) is None
    assert app.next_responses(state) == (state, [])
    assert app.estimate_emitted(state, 10.0) == 0
