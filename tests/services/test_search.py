"""Unit tests for the refinement-search application."""

import pytest

from repro.services.content import build_corpus
from repro.services.search import SearchApplication


@pytest.fixture
def app():
    return SearchApplication({"c": build_corpus("c", n_documents=120, seed=5)})


@pytest.fixture
def state(app):
    return app.initial_state("c", None)


def step(app, state, update):
    state = app.apply_update(state, update)
    return app.respond_to_update(state, update)


def test_fresh_query_appends_result_set(app, state):
    state, responses = step(app, state, {"op": "query", "terms": ["replication"]})
    assert len(state.result_sets) == 1
    assert len(responses) == 1
    assert responses[0].klass == "result"
    assert responses[0].body["result_set"] == 0
    corpus = app.corpus("c")
    expected = corpus.matching({"replication"})
    assert responses[0].body["doc_ids"] == expected


def test_refine_narrows_previous_set(app, state):
    state, _ = step(app, state, {"op": "query", "terms": ["replication"]})
    state, responses = step(
        app, state, {"op": "refine", "base": 0, "terms": ["group"]}
    )
    base = set(state.result_sets[0])
    refined = set(state.result_sets[1])
    assert refined <= base
    assert responses[0].body["result_set"] == 1


def test_after_year_filter(app, state):
    state, _ = step(app, state, {"op": "query", "terms": ["group"]})
    state, responses = step(app, state, {"op": "after", "base": 0, "year": 1995})
    corpus = app.corpus("c")
    for doc_id in responses[0].body["doc_ids"]:
        assert corpus.documents[doc_id].year > 1995


def test_intersect(app, state):
    state, _ = step(app, state, {"op": "query", "terms": ["replication"]})
    state, _ = step(app, state, {"op": "query", "terms": ["group"]})
    state, responses = step(app, state, {"op": "intersect", "a": 0, "b": 1})
    a, b = set(state.result_sets[0]), set(state.result_sets[1])
    assert set(responses[0].body["doc_ids"]) == a & b


def test_invalid_base_produces_no_result(app, state):
    state, responses = step(app, state, {"op": "refine", "base": 7, "terms": ["x"]})
    assert state.result_sets == ()
    assert responses == []


def test_unknown_op_noop(app, state):
    state, responses = step(app, state, {"op": "teleport"})
    assert state.result_sets == ()
    assert responses == []


def test_context_is_the_list_of_result_sets(app, state):
    """The paper: 'the session context is the list of previous result
    sets' — refinements years later still reference set 0."""
    state, _ = step(app, state, {"op": "query", "terms": ["replication"]})
    for _ in range(4):
        state, _ = step(app, state, {"op": "query", "terms": ["membership"]})
    state, responses = step(
        app, state, {"op": "refine", "base": 0, "terms": ["failure"]}
    )
    base = set(state.result_sets[0])
    assert set(responses[0].body["doc_ids"]) <= base


def test_each_result_reported_once(app, state):
    state, r1 = step(app, state, {"op": "query", "terms": ["group"]})
    state, r2 = step(app, state, {"op": "query", "terms": ["view"]})
    assert [r.index for r in r1] == [0]
    assert [r.index for r in r2] == [1]


def test_no_streaming(app, state):
    assert app.response_interval(state) is None
