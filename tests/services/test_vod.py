"""Unit tests for the VoD application."""

import copy

import pytest

from repro.services.content import build_movie
from repro.services.vod import FRAME_SIZE, VodApplication


@pytest.fixture
def vod():
    return VodApplication({"m": build_movie("m", duration_seconds=10, frame_rate=10)})


@pytest.fixture
def state(vod):
    return vod.initial_state("m", {})


def drain(vod, state, n):
    responses = []
    for _ in range(n):
        state, out = vod.next_responses(state)
        responses.extend(out)
    return state, responses


def test_initial_state_defaults(vod, state):
    assert state.position == 0
    assert state.rate == 10.0
    assert not state.paused


def test_initial_state_params(vod):
    state = vod.initial_state("m", {"start": 30, "rate": 5.0, "paused": True})
    assert state.position == 30 and state.rate == 5.0 and state.paused


def test_frames_stream_in_order(vod, state):
    _, responses = drain(vod, state, 5)
    assert [r.index for r in responses] == [0, 1, 2, 3, 4]


def test_gop_pattern_classes(vod, state):
    _, responses = drain(vod, state, 12)
    assert "".join(r.klass for r in responses) == "IBBPBBPBBPBB"


def test_frame_sizes_by_class(vod, state):
    _, responses = drain(vod, state, 4)
    assert responses[0].size == FRAME_SIZE["I"]
    assert responses[1].size == FRAME_SIZE["B"]
    assert responses[3].size == FRAME_SIZE["P"]


def test_skip_update(vod, state):
    state = vod.apply_update(state, {"op": "skip", "to": 50})
    assert state.position == 50
    _, responses = drain(vod, state, 1)
    assert responses[0].index == 50


def test_skip_clamps_to_bounds(vod, state):
    assert vod.apply_update(state, {"op": "skip", "to": -5}).position == 0
    assert vod.apply_update(state, {"op": "skip", "to": 9999}).position == 100


def test_pause_stops_responses(vod, state):
    state = vod.apply_update(state, {"op": "pause"})
    assert vod.response_interval(state) is None
    state, responses = vod.next_responses(state)
    assert responses == []
    assert state.position == 0


def test_resume_restores_interval(vod, state):
    state = vod.apply_update(state, {"op": "pause"})
    state = vod.apply_update(state, {"op": "resume"})
    assert vod.response_interval(state) == pytest.approx(0.1)


def test_rate_update_changes_interval(vod, state):
    state = vod.apply_update(state, {"op": "rate", "value": 20.0})
    assert vod.response_interval(state) == pytest.approx(0.05)


def test_rate_floor(vod, state):
    state = vod.apply_update(state, {"op": "rate", "value": 0.0})
    assert state.rate == pytest.approx(0.1)


def test_unknown_update_is_noop(vod, state):
    assert vod.apply_update(state, {"op": "dance"}) == state


def test_estimate_emitted(vod, state):
    assert vod.estimate_emitted(state, 2.0) == 20
    paused = vod.apply_update(state, {"op": "pause"})
    assert vod.estimate_emitted(paused, 2.0) == 0


def test_estimate_emitted_clamped_by_remaining(vod):
    state = vod.initial_state("m", {"start": 95})
    assert vod.estimate_emitted(state, 10.0) == 5


def test_advance_and_finish(vod, state):
    state = vod.advance(state, 99)
    assert not vod.is_finished(state)
    state = vod.advance(state, 5)
    assert state.position == 100
    assert vod.is_finished(state)
    state, responses = vod.next_responses(state)
    assert responses == []


def test_state_is_immutable_value(vod, state):
    """Frozen dataclass: snapshots can never alias live state."""
    copied = copy.deepcopy(state)
    new_state = vod.apply_update(state, {"op": "skip", "to": 10})
    assert state == copied
    assert new_state is not state
