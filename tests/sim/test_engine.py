"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import PeriodicTimer, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_times():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]


def test_run_until_stops_at_boundary_and_sets_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run_until(10.0)
    assert fired == [1, 5]
    assert sim.now == 10.0


def test_run_until_includes_events_at_exact_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("x"))
    sim.run_until(2.0)
    assert fired == ["x"]


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(1.0, lambda: chain(n + 1))

    sim.schedule(1.0, lambda: chain(1))
    sim.run()
    assert seen == [1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cannot_run_backwards():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_run_until_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.001, forever)
    with pytest.raises(SimulationError):
        sim.run_until(100.0, max_events=50)


def test_executed_and_pending_counts():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    e1.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.executed_events == 1


def test_clear_drops_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.clear()
    sim.run()
    assert fired == []


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, period=1.0, callback=lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_first_delay_override(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, period=2.0, callback=lambda: ticks.append(sim.now))
        timer.start(first_delay=0.5)
        sim.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, period=1.0, callback=lambda: ticks.append(sim.now))
        timer.start()
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.active

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, period=1.0, callback=lambda: ticks.append(1))

        def stopper():
            ticks.append("stop")
            timer.stop()

        timer.callback = stopper
        timer.start()
        sim.run_until(5.0)
        assert ticks == ["stop"]

    def test_zero_period_rejected(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, period=0.0, callback=lambda: None)
        with pytest.raises(SimulationError):
            timer.start()
