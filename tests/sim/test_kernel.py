"""Fast-path kernel internals: live counter, lazy-deletion compaction,
and the slotted event representation.

``test_engine.py`` covers the simulator's public contract; these tests
pin the accounting and compaction machinery the fast path added, which
has failure modes (counter drift, dropped events on re-heapify, stale
handles after ``clear``) that no behavioural test would catch until much
later and far away.
"""

import pytest

from repro.sim.engine import _COMPACT_MIN_DEAD, Event, Simulator


def noop():
    return None


class TestLiveCounter:
    def test_counts_schedule_cancel_and_pop(self):
        sim = Simulator()
        events = [sim.schedule(float(i), noop) for i in range(5)]
        assert sim.pending_events == 5
        events[3].cancel()
        assert sim.pending_events == 4
        sim.run_until(1.5)  # pops t=0 and t=1
        assert sim.pending_events == 2
        sim.run_until(10.0)
        assert sim.pending_events == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, noop)
        sim.schedule(2.0, noop)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_execution_is_a_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, noop)
        sim.run_until(2.0)
        event.cancel()
        assert sim.pending_events == 0
        assert not event.cancelled  # fired, not cancelled

    def test_clear_resets_and_detaches_handles(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), noop) for i in range(3)]
        sim.clear()
        assert sim.pending_events == 0
        # cancelling a handle from before the clear must not drive the
        # live counter negative or resurrect dead accounting
        events[0].cancel()
        assert sim.pending_events == 0
        sim.schedule(1.0, noop)
        assert sim.pending_events == 1


class TestCompaction:
    def test_mass_cancellation_shrinks_the_heap(self):
        sim = Simulator()
        keep = sim.schedule(50.0, noop)
        doomed = [sim.schedule(float(i + 1), noop) for i in range(4 * _COMPACT_MIN_DEAD)]
        for event in doomed:
            event.cancel()
        # well past the threshold: the dead entries must be gone
        assert len(sim._queue) < _COMPACT_MIN_DEAD
        assert sim.pending_events == 1
        assert not keep.finished

    def test_execution_order_survives_compaction(self):
        sim = Simulator()
        fired: list[str] = []
        survivors = []
        doomed = []
        for i in range(3 * _COMPACT_MIN_DEAD):
            t = float(i + 1)
            doomed.append(sim.schedule(t, noop))
            survivors.append(
                sim.schedule(t, lambda t=t: fired.append(f"a{t}"))
            )
            survivors.append(
                sim.schedule(t, lambda t=t: fired.append(f"b{t}"))
            )
        for event in doomed:
            event.cancel()  # triggers compaction partway through
        sim.run_until(1e9)
        expected = [
            f"{tag}{float(i + 1)}"
            for i in range(3 * _COMPACT_MIN_DEAD)
            for tag in ("a", "b")
        ]
        assert fired == expected  # time order, insertion-order ties

    def test_compaction_during_callback_is_safe(self):
        # a callback that mass-cancels rebinds the heap mid-run_until;
        # remaining events must still fire
        sim = Simulator()
        fired = []
        doomed = [sim.schedule(90.0, noop) for _ in range(3 * _COMPACT_MIN_DEAD)]

        def massacre():
            for event in doomed:
                event.cancel()

        sim.schedule(1.0, massacre)
        sim.schedule(2.0, lambda: fired.append("after"))
        sim.run_until(100.0)
        assert fired == ["after"]
        assert sim.pending_events == 0


class TestSlottedEvent:
    def test_event_has_no_dict(self):
        event = Simulator().schedule(1.0, noop)
        with pytest.raises(AttributeError):
            event.__dict__

    def test_heap_entries_are_tuples(self):
        sim = Simulator()
        sim.schedule(1.0, noop)
        entry = sim._queue[0]
        assert isinstance(entry, tuple)
        assert entry[0] == 1.0 and isinstance(entry[2], Event)
