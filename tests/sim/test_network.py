"""Unit tests for the simulated network (delivery, loss, FIFO, accounting)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, UniformLatency
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology
from repro.sim.trace import TraceLog


class Sink:
    """A minimal attached endpoint that records deliveries."""

    def __init__(self, network, node_id, up=True):
        self.node_id = node_id
        self.up = up
        self.received = []
        network.attach(node_id, self.received.append, lambda: self.up)


@pytest.fixture
def net():
    sim = Simulator()
    return Network(sim, Topology(), FixedLatency(0.01))


def test_basic_delivery(net):
    a = Sink(net, "a")
    b = Sink(net, "b")
    net.send("a", "b", {"x": 1}, kind="data")
    net.sim.run()
    assert len(b.received) == 1
    msg = b.received[0]
    assert msg.payload == {"x": 1}
    assert msg.sender == "a"
    assert msg.kind == "data"
    assert net.sim.now == pytest.approx(0.01)
    assert a.received == []


def test_delivery_to_self(net):
    a = Sink(net, "a")
    net.send("a", "a", "loop")
    net.sim.run()
    assert [m.payload for m in a.received] == ["loop"]


def test_fifo_per_pair_even_with_jittered_latency():
    sim = Simulator()
    rng = RngRegistry(7).stream("latency")
    net = Network(sim, Topology(), UniformLatency(0.001, 0.1, rng))
    Sink(net, "a")
    b = Sink(net, "b")
    for i in range(50):
        net.send("a", "b", i)
    sim.run()
    assert [m.payload for m in b.received] == list(range(50))


def test_fifo_not_enforced_across_pairs():
    # Different senders may interleave arbitrarily; only per-pair order holds.
    sim = Simulator()
    net = Network(sim, Topology(), FixedLatency(0.01))
    Sink(net, "a")
    Sink(net, "b")
    c = Sink(net, "c")
    net.send("a", "c", "a1")
    net.send("b", "c", "b1")
    net.send("a", "c", "a2")
    sim.run()
    payloads = [m.payload for m in c.received]
    assert payloads.index("a1") < payloads.index("a2")


def test_drop_when_disconnected_at_send(net):
    Sink(net, "a")
    b = Sink(net, "b")
    net.topology.partition({"a"}, {"b"})
    net.send("a", "b", "lost")
    net.sim.run()
    assert b.received == []
    assert net.total_dropped == 1


def test_drop_when_partition_forms_in_flight(net):
    Sink(net, "a")
    b = Sink(net, "b")
    net.send("a", "b", "in-flight")
    net.sim.schedule(0.005, lambda: net.topology.partition({"a"}, {"b"}))
    net.sim.run()
    assert b.received == []
    assert net.total_dropped == 1


def test_delivered_if_partition_forms_after_arrival(net):
    Sink(net, "a")
    b = Sink(net, "b")
    net.send("a", "b", "made-it")
    net.sim.schedule(0.02, lambda: net.topology.partition({"a"}, {"b"}))
    net.sim.run()
    assert [m.payload for m in b.received] == ["made-it"]


def test_drop_when_receiver_down_at_arrival(net):
    Sink(net, "a")
    b = Sink(net, "b")
    net.send("a", "b", "too-late")
    b.up = False
    net.sim.run()
    assert b.received == []
    assert net.total_dropped == 1


def test_drop_when_receiver_unknown(net):
    Sink(net, "a")
    net.send("a", "ghost", "nobody-home")
    net.sim.run()
    assert net.total_dropped == 1


def test_multicast_reaches_all_receivers(net):
    Sink(net, "a")
    b = Sink(net, "b")
    c = Sink(net, "c")
    net.multicast("a", ["b", "c"], "hello")
    net.sim.run()
    assert [m.payload for m in b.received] == ["hello"]
    assert [m.payload for m in c.received] == ["hello"]


def test_multicast_include_self_flag(net):
    a = Sink(net, "a")
    b = Sink(net, "b")
    net.multicast("a", ["a", "b"], "x", include_self=False)
    net.sim.run()
    assert a.received == []
    assert len(b.received) == 1


def test_accounting_by_kind(net):
    Sink(net, "a")
    Sink(net, "b")
    net.send("a", "b", 1, kind="heartbeat", size=10)
    net.send("a", "b", 2, kind="heartbeat", size=10)
    net.send("a", "b", 3, kind="data", size=100)
    net.sim.run()
    assert net.sent_count("a") == 3
    assert net.sent_count("a", "heartbeat") == 2
    assert net.received_count("b", "data") == 1
    assert net.received_bytes("b") == 120
    assert net.kinds_received("b") == {"heartbeat": 2, "data": 1}


def test_reset_stats(net):
    Sink(net, "a")
    Sink(net, "b")
    net.send("a", "b", 1)
    net.sim.run()
    net.reset_stats()
    assert net.sent_count("a") == 0
    assert net.total_sent == 0


def test_trace_records_delivery_and_drop():
    sim = Simulator()
    trace = TraceLog()
    net = Network(sim, Topology(), FixedLatency(0.01), trace=trace)
    Sink(net, "a")
    Sink(net, "b")
    net.send("a", "b", 1, kind="data")
    sim.run()
    net.topology.cut_link("a", "b")
    net.send("a", "b", 2, kind="data")
    sim.run()
    assert trace.count("net.deliver") == 1
    assert trace.count("net.drop") == 1
    drop = trace.select(category="net.drop")[0]
    assert drop.detail["reason"] == "disconnected-at-send"


# ----------------------------------------------------------------------
# chaos adversity: duplication, reordering, link delay spikes
# ----------------------------------------------------------------------
def _chaos_net():
    sim = Simulator()
    rng = RngRegistry(11).stream("chaos")
    return Network(sim, Topology(), FixedLatency(0.01), chaos_rng=rng)


def test_duplication_and_reordering_require_seeded_rng(net):
    # determinism guard: unseeded adversity would make runs irreproducible
    with pytest.raises(ValueError, match="chaos_rng"):
        net.set_duplication(0.2)
    with pytest.raises(ValueError, match="chaos_rng"):
        net.set_reordering(0.2)
    net.set_duplication(0.0)  # switching OFF never needs randomness
    net.set_reordering(0.0)


def test_adversity_rejects_bad_parameters():
    net = _chaos_net()
    with pytest.raises(ValueError):
        net.set_duplication(1.0)
    with pytest.raises(ValueError):
        net.set_duplication(-0.1)
    with pytest.raises(ValueError):
        net.set_reordering(0.5, window=-0.01)


def test_duplication_delivers_extra_copies():
    net = _chaos_net()
    Sink(net, "a")
    b = Sink(net, "b")
    net.set_duplication(0.5)
    for i in range(200):
        net.send("a", "b", i)
    net.sim.run()
    assert net.total_duplicated > 0
    assert len(b.received) == 200 + net.total_duplicated
    # duplication only echoes, it never loses the original
    assert {m.payload for m in b.received} == set(range(200))


def test_reordering_breaks_per_pair_fifo():
    net = _chaos_net()
    Sink(net, "a")
    b = Sink(net, "b")
    net.set_reordering(0.5, window=0.2)
    for i in range(100):
        net.send("a", "b", i)
    net.sim.run()
    payloads = [m.payload for m in b.received]
    assert net.total_reordered > 0
    assert payloads != sorted(payloads)  # FIFO actually violated
    assert set(payloads) == set(range(100))  # ...but nothing lost


def test_link_delay_spike_and_restore(net):
    Sink(net, "a")
    b = Sink(net, "b")
    net.set_link_delay("a", "b", 0.5)
    net.send("a", "b", "slow")
    net.sim.run()
    assert net.sim.now == pytest.approx(0.51)
    net.clear_link_delay("a", "b")
    net.send("a", "b", "fast")
    net.sim.run()
    assert net.sim.now == pytest.approx(0.52)
    assert [m.payload for m in b.received] == ["slow", "fast"]


def test_clear_adversity_lifts_everything():
    net = _chaos_net()
    Sink(net, "a")
    Sink(net, "b")
    net.set_duplication(0.3)
    net.set_reordering(0.3, window=0.1)
    net.set_link_delay("a", "b", 1.0)
    net.clear_adversity()
    assert net.duplicate_probability == 0.0
    assert net.reorder_probability == 0.0
    net.send("a", "b", "x")
    net.sim.run()
    assert net.sim.now == pytest.approx(0.01)  # spike lifted too


# ----------------------------------------------------------------------
# per-reason drop accounting
# ----------------------------------------------------------------------
def test_dropped_count_by_reason_and_node(net):
    Sink(net, "a")
    b = Sink(net, "b")
    c = Sink(net, "c")

    # reason 1: disconnected at send time
    net.topology.partition({"a"}, {"b", "c"})
    net.send("a", "b", "never-leaves")
    net.sim.run()
    net.topology.heal_partition()

    # reason 2: partition forms while in flight
    net.send("a", "b", "dies-mid-air")
    net.sim.schedule(0.005, lambda: net.topology.partition({"a"}, {"b", "c"}))
    net.sim.run()
    net.topology.heal_partition()

    # reason 3: receiver down at arrival
    net.send("a", "c", "nobody-listening")
    c.up = False
    net.sim.run()

    assert net.dropped_count() == 3
    assert net.dropped_count(reason="disconnected-at-send") == 1
    assert net.dropped_count(reason="disconnected-in-flight") == 1
    assert net.dropped_count(reason="receiver-down") == 1
    assert net.dropped_count(reason="random-loss") == 0
    assert net.drop_reasons() == {
        "disconnected-at-send": 1,
        "disconnected-in-flight": 1,
        "receiver-down": 1,
    }
    # sender-scoped filtering: all three losses were sent by "a"
    assert net.dropped_count(node="a") == 3
    assert net.dropped_count(reason="receiver-down", node="a") == 1
    assert net.dropped_count(node="b") == 0
    assert b.received == []


def test_random_loss_counted_with_reason():
    sim = Simulator()
    rng = RngRegistry(3).stream("loss")
    net = Network(sim, Topology(), FixedLatency(0.01), loss_probability=0.5, loss_rng=rng)
    Sink(net, "a")
    b = Sink(net, "b")
    for i in range(100):
        net.send("a", "b", i)
    sim.run()
    lost = net.dropped_count(reason="random-loss")
    assert lost > 0
    assert lost == net.total_dropped
    assert len(b.received) == 100 - lost
