"""Unit tests for the Process lifecycle (crash, recover, timers)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Network
from repro.sim.process import Process, ProcessState
from repro.sim.topology import Topology


class Echo(Process):
    """Records payloads; replies 'ack:<p>' when the payload asks for it."""

    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.log = []
        self.started = 0
        self.crashes = 0
        self.recoveries = 0

    def on_start(self):
        self.started += 1

    def on_message(self, message):
        self.log.append(message.payload)
        if isinstance(message.payload, str) and message.payload.startswith("ping"):
            self.send(message.sender, "ack:" + message.payload)

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, Topology(), FixedLatency(0.01))
    a = Echo("a", net)
    b = Echo("b", net)
    a.start()
    b.start()
    return sim, net, a, b


def test_request_reply(world):
    sim, net, a, b = world
    a.send("b", "ping1")
    sim.run()
    assert b.log == ["ping1"]
    assert a.log == ["ack:ping1"]


def test_start_hook_called_once(world):
    _, _, a, b = world
    assert a.started == 1 and b.started == 1


def test_crashed_process_drops_incoming(world):
    sim, net, a, b = world
    b.crash()
    a.send("b", "ping1")
    sim.run()
    assert b.log == []
    assert b.state is ProcessState.CRASHED


def test_crashed_process_cannot_send(world):
    sim, net, a, b = world
    a.crash()
    a.send("b", "ping1")
    sim.run()
    assert b.log == []


def test_crash_cancels_one_shot_timers(world):
    sim, net, a, b = world
    fired = []
    a.set_timer(1.0, lambda: fired.append("x"))
    a.crash()
    sim.run()
    assert fired == []


def test_crash_stops_periodic_timers(world):
    sim, net, a, b = world
    ticks = []
    a.set_periodic_timer(1.0, lambda: ticks.append(sim.now))
    sim.run_until(2.5)
    a.crash()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0]


def test_recover_bumps_incarnation_and_calls_hook(world):
    sim, net, a, b = world
    assert a.incarnation == 0
    a.crash()
    a.recover()
    assert a.incarnation == 1
    assert a.crashes == 1
    assert a.recoveries == 1
    a.send("b", "ping2")
    sim.run()
    assert b.log == ["ping2"]


def test_crash_idempotent(world):
    _, _, a, _ = world
    a.crash()
    a.crash()
    assert a.crashes == 1


def test_recover_when_up_is_noop(world):
    _, _, a, _ = world
    a.recover()
    assert a.recoveries == 0
    assert a.incarnation == 0


def test_timer_set_while_crashed_raises(world):
    _, _, a, _ = world
    a.crash()
    with pytest.raises(RuntimeError):
        a.set_timer(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        a.set_periodic_timer(1.0, lambda: None)


def test_message_in_flight_to_crashing_process_lost(world):
    sim, net, a, b = world
    a.send("b", "ping1")
    sim.schedule_at(0.005, b.crash)
    sim.run()
    assert b.log == []


def test_timers_fire_after_recovery(world):
    sim, net, a, b = world
    fired = []
    a.crash()
    a.recover()
    a.set_timer(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]


def test_multicast_from_process(world):
    sim, net, a, b = world
    c = Echo("c", net)
    c.start()
    a.multicast(["b", "c"], "hello", include_self=False)
    sim.run()
    assert b.log == ["hello"]
    assert c.log == ["hello"]


def test_fired_one_shot_timers_are_evicted(world):
    """Regression: fired one-shot timers must not accumulate in the
    process's timer list forever.  The >256 compaction used to filter on
    ``cancelled`` only, and firing never set it — so request-heavy long
    runs (per-request ack timers in the server and client) leaked every
    Event object ever created."""
    sim, _, a, _ = world
    fired = []
    for i in range(2000):
        a.set_timer(0.001 * (i + 1), lambda: fired.append(1))
    sim.run()
    assert len(fired) == 2000
    # one more insertion triggers compaction over an all-fired list
    a.set_timer(0.001, lambda: None)
    assert len(a._timers) <= 257


def test_mixed_timer_compaction_keeps_pending(world):
    """Compaction drops fired and cancelled timers but keeps live ones."""
    sim, _, a, _ = world
    keep = [a.set_timer(1e9, lambda: None) for _ in range(5)]
    for _ in range(300):
        a.set_timer(0.001, lambda: None)
    sim.run_until(1.0)
    a.set_timer(0.001, lambda: None)  # triggers compaction
    live = [t for t in a._timers if not t.finished]
    for event in keep:
        assert event in a._timers
    assert len(live) >= 5
    assert len(a._timers) <= 257
