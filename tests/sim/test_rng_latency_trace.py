"""Unit tests for RNG streams, latency models, and the trace log."""

import pytest

from repro.sim.latency import (
    FixedLatency,
    LogNormalLatency,
    PairwiseLatency,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class TestRngRegistry:
    def test_same_name_same_stream(self):
        rngs = RngRegistry(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_different_names_independent(self):
        rngs = RngRegistry(1)
        a = rngs.stream("a").random(5)
        b = rngs.stream("b").random(5)
        assert list(a) != list(b)

    def test_reproducible_across_registries(self):
        r1 = RngRegistry(99).stream("lat").random(10)
        r2 = RngRegistry(99).stream("lat").random(10)
        assert list(r1) == list(r2)

    def test_different_seeds_differ(self):
        r1 = RngRegistry(1).stream("lat").random(5)
        r2 = RngRegistry(2).stream("lat").random(5)
        assert list(r1) != list(r2)

    def test_fork_is_deterministic_and_independent(self):
        parent = RngRegistry(5)
        child1 = parent.fork("rep0")
        child2 = RngRegistry(5).fork("rep0")
        assert list(child1.stream("x").random(3)) == list(
            child2.stream("x").random(3)
        )
        other = parent.fork("rep1")
        assert list(other.stream("x").random(3)) != list(
            RngRegistry(5).fork("rep0").stream("x").random(3)
        )

    def test_reset_replays_streams(self):
        rngs = RngRegistry(3)
        first = list(rngs.stream("s").random(4))
        rngs.reset()
        again = list(rngs.stream("s").random(4))
        assert first == again


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(0.25)
        assert model.sample("a", "b") == 0.25

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_within_bounds(self):
        rng = RngRegistry(0).stream("lat")
        model = UniformLatency(0.01, 0.02, rng)
        samples = [model.sample("a", "b") for _ in range(200)]
        assert all(0.01 <= s <= 0.02 for s in samples)

    def test_uniform_rejects_bad_bounds(self):
        rng = RngRegistry(0).stream("lat")
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1, rng)

    def test_lognormal_floor(self):
        rng = RngRegistry(0).stream("lat")
        model = LogNormalLatency(median=0.001, sigma=2.0, rng=rng, minimum=0.0005)
        samples = [model.sample("a", "b") for _ in range(500)]
        assert min(samples) >= 0.0005

    def test_lognormal_rejects_bad_params(self):
        rng = RngRegistry(0).stream("lat")
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0, sigma=1.0, rng=rng)

    def test_pairwise_override(self):
        default = FixedLatency(0.001)
        model = PairwiseLatency(default)
        model.set_pair("a", "b", FixedLatency(0.5))
        assert model.sample("a", "b") == 0.5
        assert model.sample("b", "a") == 0.5  # symmetric by default
        assert model.sample("a", "c") == 0.001

    def test_pairwise_asymmetric(self):
        model = PairwiseLatency(FixedLatency(0.001))
        model.set_pair("a", "b", FixedLatency(0.5), symmetric=False)
        assert model.sample("a", "b") == 0.5
        assert model.sample("b", "a") == 0.001

    def test_presets_sane(self):
        rng = RngRegistry(0).stream("lat")
        lan = lan_latency(rng)
        wan = wan_latency(rng)
        lan_avg = sum(lan.sample("a", "b") for _ in range(100)) / 100
        wan_avg = sum(wan.sample("a", "b") for _ in range(100)) / 100
        assert lan_avg < 0.001 < wan_avg


class TestTraceLog:
    def test_record_and_select(self):
        log = TraceLog()
        log.record(1.0, "a", "view", vid=1)
        log.record(2.0, "b", "view", vid=2)
        log.record(3.0, "a", "crash")
        assert log.count("view") == 2
        assert len(log.select(node="a")) == 2
        assert log.select(category="view", node="b")[0].detail == {"vid": 2}
        assert len(log.select(since=2.0)) == 2
        assert len(log.select(until=2.0)) == 2

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "a", "x")
        assert len(log) == 0

    def test_category_filter(self):
        log = TraceLog(categories={"keep"})
        log.record(1.0, "a", "keep")
        log.record(1.0, "a", "drop")
        assert log.count("keep") == 1
        assert log.count("drop") == 0

    def test_capacity_keeps_tail(self):
        log = TraceLog(capacity=3)
        for i in range(10):
            log.record(float(i), "a", "tick", i=i)
        assert len(log) == 3
        assert [e.detail["i"] for e in log.events] == [7, 8, 9]

    def test_subscriber_sees_events(self):
        log = TraceLog()
        seen = []
        log.subscribe(seen.append)
        log.record(1.0, "a", "x")
        assert len(seen) == 1 and seen[0].category == "x"

    def test_clear(self):
        log = TraceLog()
        log.record(1.0, "a", "x")
        log.clear()
        assert len(log) == 0
