"""Unit tests for connectivity topology (partitions, link cuts, transitivity)."""

from repro.sim.topology import Topology


def make(n=4):
    return Topology(nodes=range(n))


def test_fully_connected_by_default():
    topo = make()
    for a in range(4):
        for b in range(4):
            assert topo.connected(a, b)


def test_partition_blocks_cross_component_traffic():
    topo = make()
    topo.partition({0, 1}, {2, 3})
    assert topo.connected(0, 1)
    assert topo.connected(2, 3)
    assert not topo.connected(0, 2)
    assert not topo.connected(3, 1)


def test_unmentioned_nodes_form_implicit_component():
    topo = Topology(nodes=range(5))
    topo.partition({0, 1})
    assert topo.connected(0, 1)
    assert topo.connected(2, 3)
    assert topo.connected(3, 4)
    assert not topo.connected(0, 2)


def test_heal_partition_restores_connectivity():
    topo = make()
    topo.partition({0}, {1, 2, 3})
    topo.heal_partition()
    assert topo.connected(0, 3)


def test_repartition_replaces_previous_partition():
    topo = make()
    topo.partition({0, 1}, {2, 3})
    topo.partition({0, 2}, {1, 3})
    assert topo.connected(0, 2)
    assert not topo.connected(0, 1)


def test_cut_link_symmetric_by_default():
    topo = make()
    topo.cut_link(0, 1)
    assert not topo.connected(0, 1)
    assert not topo.connected(1, 0)
    assert topo.connected(0, 2)


def test_cut_link_asymmetric():
    topo = make()
    topo.cut_link(0, 1, symmetric=False)
    assert not topo.connected(0, 1)
    assert topo.connected(1, 0)


def test_restore_link():
    topo = make()
    topo.cut_link(0, 1)
    topo.restore_link(0, 1)
    assert topo.connected(0, 1)


def test_restore_all_links():
    topo = make()
    topo.cut_link(0, 1)
    topo.cut_link(2, 3)
    topo.restore_all_links()
    assert topo.connected(0, 1)
    assert topo.connected(2, 3)


def test_cut_links_compose_with_partition():
    topo = make()
    topo.partition({0, 1, 2}, {3})
    topo.cut_link(0, 1)
    assert not topo.connected(0, 1)
    assert topo.connected(0, 2)
    topo.heal_partition()
    assert not topo.connected(0, 1)  # cut link survives the heal


def test_node_down_blocks_all_traffic():
    topo = make()
    topo.set_node_down(1)
    assert not topo.connected(0, 1)
    assert not topo.connected(1, 0)
    assert not topo.connected(1, 1)
    topo.set_node_down(1, down=False)
    assert topo.connected(0, 1)


def test_self_connectivity_when_up():
    topo = make()
    assert topo.connected(2, 2)


def test_component_members_requires_bidirectional_links():
    topo = make()
    topo.cut_link(0, 1, symmetric=False)
    members = topo.component_members(0)
    assert 1 not in members
    assert {0, 2, 3} <= members


def test_transitive_when_cleanly_partitioned():
    topo = make()
    assert topo.is_transitive()
    topo.partition({0, 1}, {2, 3})
    assert topo.is_transitive()


def test_non_transitive_with_selective_cut():
    # The WAN pattern from Section 4: servers 0 and 1 cannot talk, yet both
    # can talk to the client (node 2).
    topo = make(3)
    topo.cut_link(0, 1)
    assert topo.connected(0, 2)
    assert topo.connected(1, 2)
    assert not topo.connected(0, 1)
    assert not topo.is_transitive()


def test_remove_node_clears_its_state():
    topo = make()
    topo.cut_link(0, 1)
    topo.set_node_down(0)
    topo.remove_node(0)
    assert 0 not in topo.nodes
    topo.add_node(0)
    assert topo.connected(0, 1)  # old cut/down state was removed


def test_generation_bumps_on_changes():
    topo = make()
    g0 = topo.generation
    topo.partition({0}, {1, 2, 3})
    g1 = topo.generation
    topo.cut_link(1, 2)
    g2 = topo.generation
    assert g0 < g1 < g2


def test_snapshot_is_json_friendly():
    topo = make()
    topo.partition({0, 1}, {2, 3})
    topo.cut_link(0, 3)
    topo.set_node_down(2)
    snap = topo.snapshot()
    assert set(snap) == {"nodes", "down", "components", "cut_links"}
    assert snap["down"] == ["2"]
