"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_policy_command(capsys):
    assert main(["policy", "--target", "1e-4", "--failure-rate", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "backups needed" in out
    assert "achieved loss" in out


def test_experiments_subset_fast(capsys):
    assert main(["experiments", "--fast", "E3"]) == 0
    out = capsys.readouterr().out
    assert "E3:" in out


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "frames" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_chaos_explore_smoke(capsys, tmp_path):
    # one clean iteration per profile at a pinned seed: exit 0, no artifacts
    assert (
        main(
            [
                "chaos",
                "--seed", "1",
                "--iterations", "3",
                "--artifact-dir", str(tmp_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert list(tmp_path.iterdir()) == []


def test_chaos_plant_found_shrunk_and_replayable(capsys, tmp_path):
    # validation mode: with the planted bug the engine must find it
    # (exit 0 == found), write an artifact, and --replay must re-trigger it
    assert (
        main(
            [
                "chaos",
                "--seed", "8",
                "--iterations", "2",
                "--profile", "crashes",
                "--plant", "handoff-stall",
                "--artifact-dir", str(tmp_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "VIOLATION" in out
    assert "shrunk" in out
    artifacts = sorted(tmp_path.glob("chaos-*.json"))
    assert artifacts
    assert main(["chaos", "--replay", str(artifacts[0])]) == 0
    out = capsys.readouterr().out
    assert "reproduced       : yes" in out
