"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_policy_command(capsys):
    assert main(["policy", "--target", "1e-4", "--failure-rate", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "backups needed" in out
    assert "achieved loss" in out


def test_experiments_subset_fast(capsys):
    assert main(["experiments", "--fast", "E3"]) == 0
    out = capsys.readouterr().out
    assert "E3:" in out


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "frames" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
