"""Every example script must run to completion (they carry their own
assertions about the behaviour they demonstrate)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stdout + result.stderr
